"""Property-based tests for the framework's cross-module invariants.

These run the full pipeline at hypothesis-chosen dates and parameters and
assert the structural properties every chapter of the analysis relies on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.catalog import APPLICATIONS
from repro.controllability.frontier import lower_bound_uncontrollable
from repro.core.framework import derive_bounds
from repro.core.threshold import ThresholdPolicy, select_threshold, snapshot
from repro.diffusion.acquisition import acquisition_premium
from repro.diffusion.policy import evaluate_policy
from repro.market.installed import installed_units_above

years = st.floats(min_value=1990.0, max_value=1999.9)
thresholds = st.floats(min_value=10.0, max_value=100_000.0)
policies = st.sampled_from(list(ThresholdPolicy))


@given(years)
@settings(max_examples=30, deadline=None)
def test_bounds_invariants(year):
    b = derive_bounds(year)
    assert b.lower_mtops == max(b.uncontrollable_mtops, b.foreign_mtops)
    assert b.upper_theoretical_mtops >= b.lower_mtops
    mins = [a.min_at(year) for a in b.protectable_applications]
    assert mins == sorted(mins)
    assert all(m > b.lower_mtops for m in mins)
    if b.upper_application_mtops is not None:
        assert b.upper_application_mtops > b.lower_mtops


@given(years, years)
@settings(max_examples=30, deadline=None)
def test_frontier_monotone_in_time(y1, y2):
    f1 = lower_bound_uncontrollable(min(y1, y2)).mtops
    f2 = lower_bound_uncontrollable(max(y1, y2)).mtops
    assert f1 <= f2


@given(years)
@settings(max_examples=20, deadline=None)
def test_snapshot_geometry(year):
    s = snapshot(year)
    assert s.line_a_mtops <= s.line_d_mtops
    assert s.installed_counts.min() >= 0
    assert int(s.application_counts.sum()) == sum(
        1 for a in APPLICATIONS if a.year_first <= year
    )


@given(years, policies)
@settings(max_examples=25, deadline=None)
def test_selected_threshold_at_or_above_line_a(year, policy):
    choice = select_threshold(year, policy)
    line_a = derive_bounds(year).lower_mtops
    assert choice.threshold_mtops >= line_a * (1 - 1e-9)
    # Everything reported as given up really lies within (A, threshold].
    for app in choice.applications_given_up:
        assert line_a < app.min_at(year) <= choice.threshold_mtops * (1 + 1e-9)


@given(years, thresholds, thresholds)
@settings(max_examples=25, deadline=None)
def test_installed_units_monotone_in_threshold(year, t1, t2):
    lo, hi = sorted((t1, t2))
    assert installed_units_above(lo, year) >= installed_units_above(hi, year)


@given(st.floats(min_value=1994.0, max_value=1999.0),
       st.floats(min_value=100.0, max_value=50_000.0),
       st.floats(min_value=100.0, max_value=50_000.0))
@settings(max_examples=25, deadline=None)
def test_acquisition_severity_monotone_in_target(year, m1, m2):
    lo, hi = sorted((m1, m2))
    easy = acquisition_premium(lo, year)
    hard = acquisition_premium(hi, year)
    # A higher target can only shrink the candidate set, so the best
    # available severity cannot fall.
    assert hard.controllability >= easy.controllability - 1e-12


@given(years, thresholds)
@settings(max_examples=25, deadline=None)
def test_policy_effectiveness_partition(year, threshold):
    pe = evaluate_policy(threshold, year)
    protected = {a.name for a in pe.protected_applications}
    illusory = {a.name for a in pe.illusory_applications}
    assert not protected & illusory
    for app in pe.protected_applications:
        assert app.min_at(year) >= threshold
        assert app.min_at(year) >= pe.frontier_mtops
    if pe.credible:
        assert pe.burden_units == 0.0
        assert not pe.illusory_applications


@given(st.floats(min_value=1945.0, max_value=2040.0),
       st.sampled_from([a.name for a in APPLICATIONS]))
@settings(max_examples=40, deadline=None)
def test_drift_bounds(year, name):
    from repro.apps.catalog import find_application
    from repro.apps.requirements import DRIFT_FLOOR_FRACTION

    app = find_application(name)
    value = app.min_at(year)
    assert app.min_mtops * DRIFT_FLOOR_FRACTION - 1e-12 <= value
    assert value <= app.min_mtops + 1e-12


@given(years)
@settings(max_examples=15, deadline=None)
def test_review_consistency(year):
    from repro.core.review import run_annual_review

    review = run_annual_review(year)
    assert review.recommendation.threshold_mtops >= review.bounds.lower_mtops
    # Stale means exactly: in-force threshold below the lower bound.
    assert review.threshold_is_stale == (
        review.threshold_in_force < review.bounds.lower_mtops
    )


def test_properties_file_has_coverage():
    """Meta-check: this file exercises the intended breadth."""
    import sys

    module = sys.modules[__name__]
    property_tests = [n for n in dir(module) if n.startswith("test_")]
    assert len(property_tests) >= 9
