"""Computational taxonomy of national-security HPC (Tables 6-13).

Table 6's nine Computational Technology Areas (CTAs) cover science and
technology projects; Table 7's four Computational Functions (CFs) cover
developmental test and evaluation; cryptology stands alone as a fourteenth
discipline.  Tables 8-13 organize the mission side: functional areas of
advanced-conventional-weapons RDT&E and of military operations, each with
its design/evaluation functions mapped to CTAs (Tables 9-12).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "CTA",
    "CF",
    "MissionArea",
    "TimingClass",
    "Parallelizability",
    "DesignFunction",
    "FunctionalArea",
    "ACW_FUNCTIONAL_AREAS",
    "MILOPS_FUNCTIONAL_AREAS",
]


class CTA(enum.Enum):
    """Computational Technology Areas for S&T projects (Table 6)."""

    CCM = "Computational Chemistry and Materials Science"
    CEA = "Computational Electromagnetics and Acoustics"
    CEN = "Computational Electronics and Nanoelectronics"
    CFD = "Computational Fluid Dynamics"
    CSM = "Computational Structural Mechanics"
    CWO = "Climate, Weather, and Ocean Modeling"
    EQM = "Environmental Quality Monitoring and Simulation"
    FMS = "Forces Modeling and Simulation / C4I"
    SIP = "Signal and Image Processing"
    #: "Cryptology represents a fourteenth distinct computational area."
    CRYPTOLOGY = "Cryptology"


class CF(enum.Enum):
    """Computational Functions for DT&E projects (Table 7)."""

    DBA = "Database Activities"
    RTDA = "Real-Time Data Acquisition"
    RTMS = "Real-Time Modeling and Simulation"
    TA = "Test Analysis"


class MissionArea(enum.Enum):
    """The four broad application groups of Chapter 4."""

    NUCLEAR = "Nuclear weapons programs"
    CRYPTOLOGY = "Cryptology"
    ACW = "Advanced conventional weapons programs"
    MILITARY_OPERATIONS = "Military operations"


class TimingClass(enum.Enum):
    """Time-to-solution constraint class (Chapter 2, "timing
    considerations vary greatly among application groups")."""

    #: Solutions in fractions of a second to minutes (sensors, C4I).
    REAL_TIME = "real-time"
    #: Overnight-class turnaround keeps engineers iterating (design work).
    OPERATIONAL = "operational"
    #: Weeks-long runs are tolerable (template generation, cartography).
    CAMPAIGN = "campaign"


class Parallelizability(enum.Enum):
    """How readily an application maps onto clusters of smaller machines
    (the Chapter 3/4 cluster-conversion question)."""

    #: Embarrassingly parallel or replicated-problem (crypto keysearch,
    #: template generation, flight-test processing).
    EASY = "easy"
    #: Convertible at real cost in time or accuracy (NAASW development).
    LIMITED = "limited"
    #: Tightly coupled, memory-bound, or physically constrained
    #: (turbulent-flow CSM, tactical weather, embedded sensors).
    NO = "no"


@dataclass(frozen=True)
class DesignFunction:
    """One design/evaluation function within a functional area
    (a row of Tables 9-12)."""

    name: str
    ctas: tuple[CTA, ...]

    def __post_init__(self) -> None:
        if not self.ctas:
            raise ValueError(f"{self.name}: at least one CTA required")


@dataclass(frozen=True)
class FunctionalArea:
    """A mission functional area (a row of Table 8 or Table 13)."""

    name: str
    mission: MissionArea
    functions: tuple[DesignFunction, ...]


#: Table 8 (ACW functional areas) with the function rows of Tables 9-12.
ACW_FUNCTIONAL_AREAS: tuple[FunctionalArea, ...] = (
    FunctionalArea(
        name="Aerodynamic vehicle design",
        mission=MissionArea.ACW,
        functions=(
            DesignFunction("Airfoils (wings) and airframe", (CTA.CFD,)),
            DesignFunction("Airframe structure", (CTA.CSM,)),
            DesignFunction("Signature reduction", (CTA.CFD, CTA.CEA)),
            DesignFunction("Engines (turbines)", (CTA.CFD,)),
            DesignFunction("Rocket motors", (CTA.CCM,)),
        ),
    ),
    FunctionalArea(
        name="Submarine design",
        mission=MissionArea.ACW,
        functions=(
            DesignFunction("Acoustic signature reduction", (CTA.CEA,)),
            DesignFunction("Hull structure and survivability", (CTA.CSM,)),
            DesignFunction("Hydrodynamics", (CTA.CFD,)),
            DesignFunction("Turbulent-flow radiated noise", (CTA.CFD,)),
            DesignFunction("Subsurface weapons", (CTA.CFD, CTA.CSM)),
        ),
    ),
    FunctionalArea(
        name="Surveillance and target detection and recognition",
        mission=MissionArea.ACW,
        functions=(
            DesignFunction("Automatic target recognition templates", (CTA.SIP,)),
            DesignFunction("Radar signature prediction", (CTA.CEA,)),
            DesignFunction("Acoustic sensor systems", (CTA.CEA, CTA.CWO)),
            DesignFunction("Non-acoustic ASW sensors", (CTA.CEA, CTA.SIP)),
            DesignFunction("Cartography and digital topography", (CTA.SIP,)),
        ),
    ),
    FunctionalArea(
        name="Survivability, protective structures, and weapons lethality",
        mission=MissionArea.ACW,
        functions=(
            DesignFunction("Warhead/structure interaction", (CTA.CSM,)),
            DesignFunction("Armor and armor-penetration", (CTA.CSM,)),
            DesignFunction("Deep penetration weapons", (CTA.CSM,)),
            DesignFunction("Nuclear blast effects on structures", (CTA.CFD, CTA.CSM)),
            DesignFunction("Weapons-effects test simulation", (CTA.SIP, CTA.FMS)),
        ),
    ),
)


#: Table 13 (military-operations functional areas).
MILOPS_FUNCTIONAL_AREAS: tuple[FunctionalArea, ...] = (
    FunctionalArea(
        name="C4I, target engagement, and battle management",
        mission=MissionArea.MILITARY_OPERATIONS,
        functions=(
            DesignFunction("Sensor data fusion and decision support", (CTA.FMS, CTA.SIP)),
            DesignFunction("Shipboard IR search and track (ASCM defense)", (CTA.SIP,)),
            DesignFunction("Theater missile warning (ALERT)", (CTA.SIP, CTA.FMS)),
            DesignFunction("Combat direction and avionics", (CTA.FMS,)),
            DesignFunction("Communications switching", (CTA.FMS,)),
        ),
    ),
    FunctionalArea(
        name="Information warfare",
        mission=MissionArea.MILITARY_OPERATIONS,
        functions=(
            DesignFunction("Friendly-data processing and protection", (CTA.FMS,)),
            DesignFunction("Adversary data-processing manipulation", (CTA.FMS, CTA.CRYPTOLOGY)),
        ),
    ),
    FunctionalArea(
        name="Meteorology",
        mission=MissionArea.MILITARY_OPERATIONS,
        functions=(
            DesignFunction("Global numerical weather prediction", (CTA.CWO,)),
            DesignFunction("Tactical fine-grained forecasting", (CTA.CWO,)),
            DesignFunction("Littoral air-ocean interaction", (CTA.CWO,)),
        ),
    ),
    FunctionalArea(
        name="Training and battlefield simulation",
        mission=MissionArea.MILITARY_OPERATIONS,
        functions=(
            DesignFunction("Real-time order-of-battle simulation", (CTA.FMS,)),
            DesignFunction("Interactive battlefield decision support", (CTA.FMS, CTA.SIP)),
        ),
    ),
)
