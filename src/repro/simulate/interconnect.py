"""Interconnect models: commodity LANs to proprietary MPP fabrics.

"Clustered workstations are usually connected by networks with bandwidth
and latency that are 1-2 orders of magnitude inferior to the interconnects
used in more tightly coupled systems" (Chapter 3).  The catalog spans that
range.  Parameters are delivered (not marketing) figures for the era,
including protocol-stack latency for the LAN entries.

``shared_medium`` marks networks where all stations contend for one
channel (Ethernet segments, FDDI rings): aggregate traffic serializes.
Switched fabrics scale bandwidth with node count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import check_positive

__all__ = [
    "Interconnect",
    "ETHERNET_10",
    "FDDI",
    "ATM_155",
    "HIPPI",
    "SMP_BUS",
    "PARAGON_MESH",
    "T3D_TORUS",
    "CM5_FAT_TREE",
    "INTERCONNECTS",
]


@dataclass(frozen=True)
class Interconnect:
    """A point-to-point communication substrate.

    Attributes
    ----------
    name:
        Display name.
    bandwidth_mbps:
        Delivered per-link bandwidth in megabytes per second.
    latency_us:
        Per-message latency (including software overhead) in microseconds.
    shared_medium:
        True when every node contends for one channel.
    controllable_component:
        True when the interconnect itself is an export-controllable product
        (proprietary MPP fabrics); commodity LANs are not — which is why "a
        collection of computers is only as controllable as its most
        controllable component" dooms cluster control.
    """

    name: str
    bandwidth_mbps: float
    latency_us: float
    shared_medium: bool = False
    controllable_component: bool = False

    def __post_init__(self) -> None:
        check_positive(self.bandwidth_mbps, f"{self.name}: bandwidth_mbps")
        check_positive(self.latency_us, f"{self.name}: latency_us")

    def transfer_time_s(self, megabytes: float, messages: float = 1.0) -> float:
        """Time to move ``megabytes`` in ``messages`` messages over one link."""
        if megabytes < 0 or messages < 0:
            raise ValueError("volume and message count must be non-negative")
        return megabytes / self.bandwidth_mbps + messages * self.latency_us * 1e-6

    def effective_bandwidth_mbps(self, concurrent_nodes: int) -> float:
        """Per-node bandwidth with ``concurrent_nodes`` communicating.

        On a shared medium the channel divides; on a switched fabric each
        node keeps its link.
        """
        if concurrent_nodes < 1:
            raise ValueError("concurrent_nodes must be >= 1")
        if self.shared_medium:
            return self.bandwidth_mbps / concurrent_nodes
        return self.bandwidth_mbps


#: 10 Mbit/s Ethernet with a 1990s TCP/IP stack.
ETHERNET_10 = Interconnect("10 Mb/s Ethernet", bandwidth_mbps=1.0,
                           latency_us=1_000.0, shared_medium=True)
#: 100 Mbit/s FDDI ring.
FDDI = Interconnect("FDDI", bandwidth_mbps=10.0, latency_us=500.0,
                    shared_medium=True)
#: OC-3 ATM, switched.
ATM_155 = Interconnect("ATM (155 Mb/s)", bandwidth_mbps=15.0, latency_us=150.0)
#: HiPPI, switched, 800 Mbit/s.
HIPPI = Interconnect("HiPPI", bandwidth_mbps=90.0, latency_us=100.0)
#: SMP shared memory bus (e.g. POWERpath-2-class): huge bandwidth, tiny
#: latency, but one medium shared by all processors.
SMP_BUS = Interconnect("shared-memory bus", bandwidth_mbps=1_200.0,
                       latency_us=1.0, shared_medium=True,
                       controllable_component=True)
#: Intel Paragon 2-D mesh.
PARAGON_MESH = Interconnect("Paragon mesh", bandwidth_mbps=175.0,
                            latency_us=40.0, controllable_component=True)
#: Cray T3D 3-D torus.
T3D_TORUS = Interconnect("T3D torus", bandwidth_mbps=300.0, latency_us=3.0,
                         controllable_component=True)
#: Thinking Machines CM-5 fat tree.
CM5_FAT_TREE = Interconnect("CM-5 fat tree", bandwidth_mbps=20.0,
                            latency_us=10.0, controllable_component=True)

INTERCONNECTS: tuple[Interconnect, ...] = (
    ETHERNET_10, FDDI, ATM_155, HIPPI, SMP_BUS, PARAGON_MESH, T3D_TORUS,
    CM5_FAT_TREE,
)
