"""Extension experiment: the future-scenario sweep (Chapters 2 and 6).

One table for the regime's possible futures: erosion with no new
applications, renewal under different application-demand assumptions, and
the building-block collapse of premise 3.
"""

from repro.core.scenarios import (
    erosion_report,
    premise1_with_renewal,
)
from repro.diffusion.networks import premise3_collapse_year
from repro.reporting.tables import render_table

_RENEWAL_GRID = (
    (1.0, 2.0), (1.0, 1.5), (2.0, 2.0), (2.0, 4.0), (4.0, 1.1),
)


def build_study():
    erosion = erosion_report()
    renewals = {
        (interval, multiple): premise1_with_renewal(interval, multiple)
        for interval, multiple in _RENEWAL_GRID
    }
    collapse = premise3_collapse_year()
    return erosion, renewals, collapse


def test_ext_future_scenarios(benchmark, emit):
    erosion, renewals, collapse = benchmark(build_study)
    rows = [["(no new applications)", "-",
             erosion.premise1.failure_year or "never"]]
    for (interval, multiple), outcome in sorted(renewals.items()):
        rows.append([
            f"every {interval:g} yr", f"{multiple:g}x frontier",
            outcome.failure_year or "never (renews indefinitely)",
        ])
    text = render_table(
        ["new-application cadence", "requirement level",
         "premise-1 failure year"],
        rows,
        title="Scenario sweep: when does the regime's justification run out?",
    )
    text += (
        f"\n\npremise-3 collapse (building blocks within 2x of the best "
        f"integrated system): {collapse:.1f}"
        f"\ncontrollable-range gap: {erosion.gap_1995:.1f}x (1995) -> "
        f"{erosion.gap_1999:.1f}x (1999)"
    )
    emit(text)

    # The structure of the answer: without new demand the regime dies
    # around the turn of the century; with annual 2x-frontier demand it
    # renews; either way the controllable range narrows and building
    # blocks close in.
    assert erosion.premise1.failure_year is not None
    assert renewals[(1.0, 2.0)].failure_year is None
    assert renewals[(4.0, 1.1)].failure_year is not None
    assert erosion.gap_1999 < erosion.gap_1995
    assert collapse is not None
