"""The paper's analytical framework (Chapters 2 and 5).

The three basic premises as executable tests (``premises``), application
stalactites and their computing-range envelopes (``stalactite``), the
lower/upper bound derivation and valid-threshold-range test
(``framework``), the snapshot threshold-selection analysis with its three
policies (``threshold``), the premise-failure scenario projections
(``scenarios``), and the annual-review procedure the recommendations call
for (``review``).
"""

from repro.core.stalactite import (
    Stalactite,
    ComputingRange,
    f22_stalactite,
)
from repro.core.premises import (
    PremiseReport,
    PremisesAssessment,
    evaluate_premises,
)
from repro.core.framework import (
    ThresholdBounds,
    derive_bounds,
    lower_bound_mtops,
    application_clusters,
    headline_summary,
)
from repro.core.threshold import (
    ThresholdPolicy,
    SelectedThreshold,
    Snapshot,
    snapshot,
    select_threshold,
)
from repro.core.scenarios import (
    ScenarioOutcome,
    premise1_failure_year,
    premise3_gap_series,
    erosion_report,
)
from repro.core.review import (
    AnnualReview,
    run_annual_review,
    review_series,
)

__all__ = [
    "Stalactite",
    "ComputingRange",
    "f22_stalactite",
    "PremiseReport",
    "PremisesAssessment",
    "evaluate_premises",
    "ThresholdBounds",
    "derive_bounds",
    "lower_bound_mtops",
    "application_clusters",
    "headline_summary",
    "ThresholdPolicy",
    "SelectedThreshold",
    "Snapshot",
    "snapshot",
    "select_threshold",
    "ScenarioOutcome",
    "premise1_failure_year",
    "premise3_gap_series",
    "erosion_report",
    "AnnualReview",
    "run_annual_review",
    "review_series",
]
