"""Tests for family configurations and the premise-1 renewal scenario."""

import pytest

from repro.core.scenarios import premise1_failure_year, premise1_with_renewal
from repro.machines.catalog import find_machine
from repro.machines.configurations import (
    Configuration,
    family_configurations,
    split_by_threshold,
)


class TestFamilyConfigurations:
    def test_powerchallenge_line(self):
        configs = family_configurations(find_machine("SGI PowerChallenge (4)"))
        sizes = [c.n_processors for c in configs]
        assert sizes == [2, 4, 8, 16, 18]

    def test_ratings_monotone(self):
        configs = family_configurations(find_machine("Cray CS6400 (64)"))
        ratings = [c.ctp_mtops for c in configs]
        assert ratings == sorted(ratings)

    def test_prices_monotone_and_anchored(self):
        machine = find_machine("SGI PowerChallenge (4)")
        configs = family_configurations(machine)
        prices = [c.price_usd for c in configs]
        assert prices == sorted(prices)
        assert prices[0] == machine.entry_price_usd
        assert prices[-1] == machine.max_price_usd

    def test_single_config_family(self):
        # A uniprocessor with no max_processors has exactly one config.
        configs = family_configurations(find_machine("DEC 3000/500"))
        assert len(configs) == 1
        assert configs[0].n_processors == 1

    def test_quoted_only_entry_rejected(self):
        with pytest.raises(ValueError, match="element data"):
            family_configurations(find_machine("Mercury RACE array"))

    def test_labels(self):
        config = family_configurations(find_machine("SGI PowerChallenge (4)"))[0]
        assert isinstance(config, Configuration)
        assert "@ 2p" in config.label


class TestSplitByThreshold:
    def test_loophole_family(self):
        """The enforcement problem in one call: PowerChallenge sells
        configurations on both sides of the 1,500-Mtops definition, and
        the above side is a field upgrade away."""
        machine = find_machine("SGI PowerChallenge (4)")
        below, above = split_by_threshold(machine, 1_500.0)
        assert below and above
        assert machine.field_upgradable

    def test_extreme_thresholds(self):
        machine = find_machine("SGI PowerChallenge (4)")
        below, above = split_by_threshold(machine, 1e9)
        assert not above and len(below) == 5
        below, above = split_by_threshold(machine, 0.001)
        assert not below and len(above) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            split_by_threshold(find_machine("SGI PowerChallenge (4)"), 0.0)


class TestRenewalScenario:
    def test_annual_renewal_sustains_premise1(self):
        """Chapter 2: premise-1 failure happens 'if new applications with
        very high minimum computational requirements do not emerge'.
        With annual 2x-frontier births, it never does."""
        outcome = premise1_with_renewal(1.0, 2.0)
        assert outcome.failure_year is None

    def test_biennial_renewal_leaves_windows(self):
        # The frontier grows faster than biennial 2x births can cover.
        outcome = premise1_with_renewal(2.0, 2.0)
        assert outcome.failure_year is not None

    def test_weak_renewal_equivalent_to_none(self):
        weak = premise1_with_renewal(4.0, 1.05)
        assert weak.failure_year == pytest.approx(
            premise1_failure_year(), abs=1.0
        )

    def test_bigger_multiple_never_earlier(self):
        small = premise1_with_renewal(2.0, 1.5)
        big = premise1_with_renewal(2.0, 4.0)
        if big.failure_year is not None:
            assert small.failure_year is not None
            assert big.failure_year >= small.failure_year

    def test_description_carries_parameters(self):
        outcome = premise1_with_renewal(1.5, 2.5)
        assert "1.5" in outcome.description
        assert "2.5" in outcome.description

    def test_validation(self):
        with pytest.raises(ValueError):
            premise1_with_renewal(0.0, 2.0)
        with pytest.raises(ValueError):
            premise1_with_renewal(1.0, 0.0)
