"""Unit tests for end-to-end CTP and unit conversions."""

import pytest

from repro.ctp import (
    ComputingElement,
    Coupling,
    ctp,
    ctp_homogeneous,
    mflops_to_mtops,
    mips_to_mtops,
    mtops_to_mflops,
)


def _alpha():
    return ComputingElement("21064", clock_mhz=150.0, word_bits=64.0,
                            fp_ops_per_cycle=1.0, int_ops_per_cycle=1.0,
                            concurrent_int_fp=True)


class TestCtp:
    def test_uniprocessor(self):
        assert ctp([_alpha()], Coupling.SINGLE) == pytest.approx(300.0)

    def test_t3d_64_anchor(self):
        # Paper: Cray T3D quoted at 3,439 Mtops; the reconstruction's
        # 64-node machine lands within 5%.
        value = ctp_homogeneous(_alpha(), 64, Coupling.DISTRIBUTED)
        assert value == pytest.approx(3439.0, rel=0.05)

    def test_t3d_512_anchor(self):
        value = ctp_homogeneous(_alpha(), 512, Coupling.DISTRIBUTED)
        assert value == pytest.approx(10056.0, rel=0.05)

    def test_heterogeneous_mix(self):
        small = ComputingElement("s", clock_mhz=50.0)
        value = ctp([_alpha(), small], Coupling.SHARED)
        assert value == pytest.approx(300.0 + 0.75 * 50.0)

    def test_more_processors_never_lower(self):
        v8 = ctp_homogeneous(_alpha(), 8, Coupling.DISTRIBUTED)
        v16 = ctp_homogeneous(_alpha(), 16, Coupling.DISTRIBUTED)
        assert v16 > v8


class TestConversions:
    def test_mflops_roundtrip(self):
        assert mtops_to_mflops(mflops_to_mtops(250.0)) == pytest.approx(250.0)

    def test_word_length_applies(self):
        assert mflops_to_mtops(100.0, word_bits=32.0) == pytest.approx(
            mflops_to_mtops(100.0) * 2.0 / 3.0
        )

    def test_64_bit_factor(self):
        # "Mtops are roughly equivalent to Mflops" with theoretical-op
        # credit: calibrated factor 1.5.
        assert mflops_to_mtops(100.0) == pytest.approx(150.0)

    def test_mips_vax_anchor(self):
        # 1-MIPS, 32-bit VAX-11/780 ~ 0.67 computed vs paper's 0.8.
        assert mips_to_mtops(1.0) == pytest.approx(0.8, rel=0.25)

    def test_mips_word_length(self):
        assert mips_to_mtops(10.0, word_bits=64.0) == pytest.approx(10.0)

    @pytest.mark.parametrize("func", [mflops_to_mtops, mtops_to_mflops])
    def test_rejects_nonpositive(self, func):
        with pytest.raises(ValueError):
            func(0.0)

    def test_mips_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            mips_to_mtops(-1.0)
