"""Typed exception taxonomy for the whole library.

Every error the library raises on bad input descends from
:class:`ReproError`, so callers (the CLI above all) can catch one type,
print a one-line diagnostic, and exit nonzero instead of dumping a
traceback.  Each subclass also inherits the builtin exception the seed
code raised in its place (``ValueError`` or ``KeyError``), so existing
``except ValueError`` / ``pytest.raises(ValueError)`` call sites keep
working unchanged.

Errors carry a ``context`` mapping — the offending value, the valid
range, the nearest catalog keys — which :meth:`ReproError.diagnostic`
folds into a single actionable line::

    >>> err = ValidationError("clock_mhz must be positive",
    ...                       context={"got": -100.0, "valid": "> 0"})
    >>> err.diagnostic()
    'clock_mhz must be positive [got=-100.0, valid=> 0]'
"""

from __future__ import annotations

from collections.abc import Mapping

__all__ = [
    "ReproError",
    "ValidationError",
    "CatalogLookupError",
    "ThresholdInfeasibleError",
    "TrendFitError",
    "ServiceOverloadedError",
    "DeadlineExceededError",
    "SnapshotStaleError",
    "ScenarioEpochError",
]


class ReproError(Exception):
    """Base class of every error the library raises on bad input.

    Parameters
    ----------
    message:
        Human-readable description of what went wrong.
    context:
        Optional structured payload (offending value, valid range,
        nearest catalog keys, ...) for actionable diagnostics.
    """

    def __init__(self, message: str, *,
                 context: Mapping[str, object] | None = None) -> None:
        super().__init__(message)
        self.message = str(message)
        self.context: dict[str, object] = dict(context or {})

    def __str__(self) -> str:  # also overrides KeyError's repr-quoting
        return self.message

    def diagnostic(self) -> str:
        """The message plus the context payload, on one line."""
        if not self.context:
            return self.message
        detail = ", ".join(f"{k}={self._fmt(v)}"
                           for k, v in self.context.items())
        return f"{self.message} [{detail}]"

    @staticmethod
    def _fmt(value: object) -> str:
        if isinstance(value, (list, tuple)):
            return "/".join(str(v) for v in value)
        return str(value)


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, sign, shape, units)."""


class CatalogLookupError(ReproError, KeyError):
    """A catalog lookup missed; ``context['closest']`` names near-misses."""


class ThresholdInfeasibleError(ReproError, ValueError):
    """A threshold/bound query has no feasible answer at the given date
    (e.g. no cataloged system or control regime exists yet)."""


class TrendFitError(ReproError, ValueError):
    """A trend fit or projection is ill-posed (too few distinct
    observations, nonpositive values, non-increasing trend)."""


class ServiceOverloadedError(ReproError, RuntimeError):
    """The serving layer shed a request because a bounded queue was full
    (HTTP 429); ``context['retry_after_s']`` suggests a backoff."""


class DeadlineExceededError(ReproError, TimeoutError):
    """A request missed its deadline before a result could be produced
    (HTTP 504); ``context['deadline_ms']`` names the budget."""


class SnapshotStaleError(ReproError, RuntimeError):
    """An on-disk columnar snapshot no longer matches the live catalog,
    threshold history, or schedule parameters; ``context`` carries both
    hashes.  Loading refuses rather than serving stale data — rebuild
    with ``repro snapshot``."""


class ScenarioEpochError(ReproError, RuntimeError):
    """A scenario-grid result was read after a catalog mutation changed
    the epoch it was built under; ``context`` carries ``built_at`` and
    ``current``.  Re-evaluate the grid rather than mixing worlds computed
    against different catalog states."""
