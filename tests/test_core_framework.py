"""Tests for bounds, premises, and the headline reproduction."""

import pytest

from repro.apps.taxonomy import MissionArea
from repro.core.framework import (
    application_clusters,
    derive_bounds,
    headline_summary,
    lower_bound_mtops,
)
from repro.core.premises import evaluate_premises


class TestBounds:
    def test_lower_bound_components(self):
        b = derive_bounds(1995.5)
        assert b.lower_mtops == max(b.uncontrollable_mtops, b.foreign_mtops)

    def test_mid_1995_lower_bound(self):
        """Paper headline: 4,000-5,000 Mtops in mid-1995."""
        assert 4_000.0 <= lower_bound_mtops(1995.5) <= 5_000.0

    def test_uncontrollable_dominates_foreign_in_1995(self):
        # "Performance of 'uncontrollable' U.S. systems has increased
        # dramatically, eclipsing most, if not all, non-Western HPC
        # projects."
        b = derive_bounds(1995.5)
        assert b.uncontrollable_mtops > b.foreign_mtops

    def test_protectable_sorted_ascending(self):
        b = derive_bounds(1995.5)
        mins = [a.min_at(1995.5) for a in b.protectable_applications]
        assert mins == sorted(mins)
        assert all(m > b.lower_mtops for m in mins)

    def test_upper_application_bound(self):
        b = derive_bounds(1995.5)
        assert b.upper_application_mtops == pytest.approx(
            min(a.min_at(1995.5) for a in b.protectable_applications)
        )

    def test_valid_range_exists_1995(self):
        assert derive_bounds(1995.5).valid_range_exists

    def test_future_applications_excluded(self):
        # The 1996 5-km forecasting stalactite must not appear in a 1995
        # bounds derivation.
        b = derive_bounds(1995.5)
        names = {a.name for a in b.protectable_applications}
        assert "Routine 10-day / 5-km forecasting" not in names


class TestClusters:
    def test_clusters_sorted_and_disjoint(self):
        clusters = application_clusters(1995.5)
        starts = [s for s, _ in clusters]
        assert starts == sorted(starts)
        total = sum(len(members) for _, members in clusters)
        assert total == len(derive_bounds(1995.5).protectable_applications)

    def test_mission_filter(self):
        milops = application_clusters(
            1995.5, missions=(MissionArea.MILITARY_OPERATIONS,)
        )
        for _, members in milops:
            assert all(m.mission is MissionArea.MILITARY_OPERATIONS
                       for m in members)

    def test_gap_factor_validation(self):
        with pytest.raises(ValueError):
            application_clusters(1995.5, gap_factor=1.0)

    def test_wide_gap_merges_everything(self):
        clusters = application_clusters(1995.5, gap_factor=100.0)
        assert len(clusters) == 1


class TestHeadline:
    """The executive summary's findings, as tolerance-band assertions.
    Exact paper values: 4,000-5,000 (mid-95); ~7,500 (late 96/97);
    >16,000 (by 2000); clusters at ~7,000 (RDT&E) and ~10,000 (milops)."""

    def test_mid_1995(self):
        hs = headline_summary()
        assert 4_000.0 <= hs.lower_bound_mid_1995 <= 5_000.0

    def test_late_1996_97(self):
        hs = headline_summary()
        assert 5_500.0 <= hs.lower_bound_late_1996_97 <= 9_000.0

    def test_end_of_decade(self):
        assert headline_summary().lower_bound_end_of_decade > 16_000.0

    def test_rdte_cluster_near_7000(self):
        hs = headline_summary()
        assert hs.rdte_cluster_start is not None
        assert 6_000.0 <= hs.rdte_cluster_start <= 9_000.0

    def test_milops_cluster(self):
        # Paper: 10,000; the reconstruction's cluster starts at the SIRST
        # deployment minimum (7,400 quoted) after drift — see
        # EXPERIMENTS.md for the documented deviation.
        hs = headline_summary()
        assert hs.milops_cluster_start is not None
        assert 6_500.0 <= hs.milops_cluster_start <= 13_000.0

    def test_majority_below_lower_bound(self):
        # "the majority of national security applications of HPC are
        # already possible ... at uncontrollable levels".
        assert headline_summary().fraction_apps_below_lower_1995 >= 0.5


class TestPremises:
    def test_all_hold_in_1995(self):
        """The paper's key finding: 'the basic premises ... continue to be
        viable, at least in the short term'."""
        assessment = evaluate_premises(1995.5)
        assert assessment.premise1.holds
        assert assessment.premise2.holds
        assert assessment.premise3.holds
        assert assessment.all_hold
        assert assessment.policy_justified

    def test_premises_held_during_cold_war(self):
        assert evaluate_premises(1988.0).all_hold

    def test_evidence_nonempty(self):
        assessment = evaluate_premises(1995.5)
        for report in (assessment.premise1, assessment.premise2,
                       assessment.premise3):
            assert report.evidence

    def test_premise2_cites_all_active_countries(self):
        text = " ".join(evaluate_premises(1995.5).premise2.evidence)
        for name in ("Russia", "PRC", "India"):
            assert name in text

    def test_pre_catalog_years_rejected(self):
        # Before the machine catalog begins there is no market to reason
        # about; the framework refuses rather than inventing a baseline.
        with pytest.raises(ValueError):
            evaluate_premises(1950.0)
