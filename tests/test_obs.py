"""Tests for repro.obs — the error taxonomy and the tracing/metrics layer."""

import json

import pytest

from repro.obs import (
    CatalogLookupError,
    Profile,
    ReproError,
    ThresholdInfeasibleError,
    TrendFitError,
    ValidationError,
    counter_inc,
    counters,
    metrics_snapshot,
    profile,
    profiling_active,
    render_span_tree,
    reset_counters,
    trace,
)


class TestErrorTaxonomy:
    def test_hierarchy(self):
        for cls in (ValidationError, CatalogLookupError,
                    ThresholdInfeasibleError, TrendFitError):
            assert issubclass(cls, ReproError)

    def test_backward_compat_bases(self):
        """Existing except/pytest.raises clauses keep working."""
        assert issubclass(ValidationError, ValueError)
        assert issubclass(ThresholdInfeasibleError, ValueError)
        assert issubclass(TrendFitError, ValueError)
        assert issubclass(CatalogLookupError, KeyError)

    def test_str_is_plain_message(self):
        """CatalogLookupError must not inherit KeyError's repr-quoting."""
        err = CatalogLookupError("unknown machine 'X'")
        assert str(err) == "unknown machine 'X'"

    def test_context_payload(self):
        err = ValidationError("n must be >= 1",
                              context={"got": 0, "valid": ">= 1"})
        assert err.context == {"got": 0, "valid": ">= 1"}
        assert err.message == "n must be >= 1"

    def test_context_defaults_empty(self):
        assert ReproError("boom").context == {}

    def test_diagnostic_renders_one_line(self):
        err = ValidationError("year out of range",
                              context={"got": 12.0, "valid": "[1940, 2100]"})
        diag = err.diagnostic()
        assert "\n" not in diag
        assert diag.startswith("year out of range")
        assert "got=12.0" in diag

    def test_diagnostic_without_context(self):
        assert ReproError("plain").diagnostic() == "plain"


class TestCounters:
    def setup_method(self):
        reset_counters("test_obs.")

    def test_increment_and_read(self):
        counter_inc("test_obs.a")
        counter_inc("test_obs.a", 4)
        assert counters()["test_obs.a"] == 5

    def test_reset_by_prefix(self):
        counter_inc("test_obs.a")
        counter_inc("test_obs.other.b")
        reset_counters("test_obs.other.")
        stats = counters()
        assert "test_obs.other.b" not in stats
        assert stats["test_obs.a"] == 1


class TestTraceAndProfile:
    def test_trace_is_noop_without_profile(self):
        assert not profiling_active()
        with trace("test_obs.noop") as span:
            assert span is None
        assert not profiling_active()

    def test_nested_spans_recorded(self):
        with profile() as prof:
            assert profiling_active()
            with trace("outer", kind="t") as outer:
                with trace("inner"):
                    pass
            assert outer is not None
        assert [s.name for s in prof.roots] == ["outer"]
        assert [s.name for s in prof.roots[0].children] == ["inner"]
        assert prof.roots[0].elapsed_s >= prof.roots[0].children[0].elapsed_s
        assert prof.roots[0].tags == {"kind": "t"}

    def test_trace_accepts_name_tag(self):
        """The span name is positional-only, so a ``name=`` tag is legal
        (the perf harness tags its spans this way)."""
        with profile() as prof:
            with trace("timed", name="scalar"):
                pass
        assert prof.roots[0].tags == {"name": "scalar"}

    def test_counter_deltas(self):
        counter_inc("test_obs.before")  # outside: must not appear as delta
        with profile() as prof:
            counter_inc("test_obs.during", 3)
        assert prof.counter_delta("test_obs.during") == 3
        assert prof.counter_delta("test_obs.before") == 0

    def test_render_contains_tree_and_headline_counters(self):
        with profile() as prof:
            with trace("root.span"):
                with trace("child.span"):
                    pass
        text = prof.render()
        assert "root.span" in text
        assert "child.span" in text
        assert "ms" in text
        # The headline cache counters appear even when untouched.
        assert "credit_cache.hits" in text
        assert "credit_cache.misses" in text

    def test_render_span_tree_indents_children(self):
        with profile() as prof:
            with trace("a"):
                with trace("b"):
                    pass
        lines = render_span_tree(prof.roots[0])
        assert lines[0].lstrip().startswith("a")
        assert lines[1].startswith("  ")

    def test_profile_restores_previous_collector(self):
        with profile():
            with profile():
                pass
            assert profiling_active()
        assert not profiling_active()

    def test_span_as_dict_roundtrips_json(self):
        with profile() as prof:
            with trace("a", n=3):
                with trace("b"):
                    pass
        d = prof.roots[0].as_dict()
        assert json.loads(json.dumps(d))["children"][0]["name"] == "b"

    def test_exception_still_closes_span(self):
        with profile() as prof:
            with pytest.raises(RuntimeError):
                with trace("broken"):
                    raise RuntimeError("boom")
        assert prof.roots[0].name == "broken"
        assert not prof.stack
        assert not profiling_active()


class TestMetricsSnapshot:
    def test_structure(self):
        snap = metrics_snapshot()
        assert set(snap) >= {"counters", "credit_cache", "catalog_index",
                             "frontier_index"}
        assert json.loads(json.dumps(snap)) == snap

    def test_credit_cache_stats_track_activity(self):
        from repro.ctp import Coupling
        from repro.ctp.batch import clear_credit_cache, credit_sums

        clear_credit_cache()
        credit_sums(10, Coupling.SHARED)   # miss
        credit_sums(10, Coupling.SHARED)   # hit
        cache = metrics_snapshot()["credit_cache"]
        assert cache["rows"] == 1
        assert cache["misses"] == 1
        assert cache["hits"] == 1
        clear_credit_cache()

    def test_profile_spans_are_isolated_per_collector(self):
        with profile() as first:
            with trace("first.only"):
                pass
        with profile() as second:
            with trace("second.only"):
                pass
        assert [s.name for s in first.roots] == ["first.only"]
        assert [s.name for s in second.roots] == ["second.only"]
        assert isinstance(first, Profile)
