"""Exponential trend fitting and projection.

Performance trends in the study are exponential ("performance ... has grown
by two orders of magnitude in the three years since their introduction"),
so fits are least-squares in log space and projections are straight lines
on a log axis.  All fitting is vectorized numpy; no iterative optimization
is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

import numpy as np

from repro._util import check_positive, check_year
from repro.obs.errors import ThresholdInfeasibleError, TrendFitError, ValidationError

__all__ = [
    "TrendPoint",
    "ExponentialTrend",
    "fit_exponential",
    "loo_prediction_errors",
    "running_max_series",
]


@dataclass(frozen=True)
class TrendPoint:
    """One observation on a technology curve."""

    year: float
    mtops: float
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        check_year(self.year, "year")
        check_positive(self.mtops, "mtops")


@dataclass(frozen=True)
class ExponentialTrend:
    """``mtops(year) = 10 ** (intercept + slope * (year - base_year))``.

    ``slope`` is in decades per year; ``base_year`` anchors the intercept so
    the parameters stay numerically tame.
    """

    base_year: float
    intercept: float
    slope: float
    n_points: int = 0
    residual_std: float = 0.0

    def __post_init__(self) -> None:
        check_year(self.base_year, "base_year")
        if not np.isfinite(self.intercept) or not np.isfinite(self.slope):
            raise TrendFitError(
                "trend parameters must be finite",
                context={"intercept": self.intercept, "slope": self.slope},
            )

    def value(self, year: float | np.ndarray) -> float | np.ndarray:
        """Trend value (Mtops) at ``year`` (scalar or array)."""
        year = np.asarray(year, dtype=float)
        out = 10.0 ** (self.intercept + self.slope * (year - self.base_year))
        return float(out) if out.ndim == 0 else out

    @property
    def doubling_time_years(self) -> float:
        """Time for the trend to double (infinite for a flat trend)."""
        if self.slope <= 0:
            return float("inf")
        return np.log10(2.0) / self.slope

    @property
    def growth_per_year(self) -> float:
        """Multiplicative growth factor per year."""
        return float(10.0 ** self.slope)

    def year_reaching(self, mtops: float) -> float:
        """Year at which the trend reaches ``mtops``.

        Raises ``ValueError`` for a non-increasing trend, which never
        reaches a level above its current value.
        """
        mtops = check_positive(mtops, "mtops")
        if self.slope <= 0:
            raise ThresholdInfeasibleError(
                "non-increasing trend never reaches a higher level",
                context={"slope": self.slope, "valid": "slope > 0"},
            )
        return self.base_year + (np.log10(mtops) - self.intercept) / self.slope

    def shifted(self, years: float) -> "ExponentialTrend":
        """The same trend delayed by ``years`` (used for the two-year
        uncontrollability lag and foreign assimilation lags)."""
        return ExponentialTrend(
            base_year=self.base_year,
            intercept=self.intercept - self.slope * years,
            slope=self.slope,
            n_points=self.n_points,
            residual_std=self.residual_std,
        )


def fit_exponential(
    years: Sequence[float] | np.ndarray,
    mtops: Sequence[float] | np.ndarray,
    base_year: float | None = None,
) -> ExponentialTrend:
    """Least-squares exponential fit through (year, Mtops) observations.

    At least two distinct years are required.  The fit is ordinary least
    squares on ``log10(mtops)``; ``residual_std`` records the scatter in
    decades, which downstream consumers use as an uncertainty band.
    """
    y = np.asarray(years, dtype=float)
    v = np.asarray(mtops, dtype=float)
    if y.shape != v.shape or y.ndim != 1:
        raise ValidationError(
            "years and mtops must be 1-D arrays of equal length",
            context={"years_shape": y.shape, "mtops_shape": v.shape},
        )
    if y.size < 2 or np.unique(y).size < 2:
        raise TrendFitError(
            "need observations at >= 2 distinct years to fit a trend",
            context={"observations": int(y.size),
                     "distinct_years": int(np.unique(y).size), "valid": ">= 2"},
        )
    if np.any(v <= 0) or not np.all(np.isfinite(v)):
        raise TrendFitError("all mtops values must be finite and positive",
                            context={"min": float(v.min()), "valid": "> 0"})
    base = float(np.min(y)) if base_year is None else float(base_year)
    check_year(base, "base_year")
    x = y - base
    logv = np.log10(v)
    slope, intercept = np.polyfit(x, logv, 1)
    resid = logv - (intercept + slope * x)
    return ExponentialTrend(
        base_year=base,
        intercept=float(intercept),
        slope=float(slope),
        n_points=int(y.size),
        residual_std=float(np.std(resid)),
    )


def loo_prediction_errors(
    years: Sequence[float] | np.ndarray,
    mtops: Sequence[float] | np.ndarray,
) -> np.ndarray:
    """Leave-one-out prediction errors of the exponential fit, in decades.

    For each observation, fit the trend on the remaining points and report
    ``log10(actual / predicted)``.  The spread of these errors is the
    honest uncertainty of a projection — what an annual review should
    quote alongside the trend line.  Requires at least four observations
    at three distinct years.
    """
    y = np.asarray(years, dtype=float)
    v = np.asarray(mtops, dtype=float)
    if y.size < 4 or np.unique(y).size < 3:
        raise TrendFitError(
            "need >= 4 observations at >= 3 distinct years",
            context={"observations": int(y.size),
                     "distinct_years": int(np.unique(y).size)},
        )
    if np.any(v <= 0) or not np.all(np.isfinite(v)):
        raise TrendFitError("all mtops values must be finite and positive",
                            context={"min": float(v.min()), "valid": "> 0"})
    # Closed form instead of n refits: for OLS the deleted-point prediction
    # residual is e_i / (1 - h_ii), with h_ii the leverage of point i.
    x = y - np.min(y)
    logv = np.log10(v)
    x_bar = x.mean()
    sxx = float(np.sum((x - x_bar) ** 2))
    slope = float(np.sum((x - x_bar) * (logv - logv.mean())) / sxx)
    intercept = float(logv.mean() - slope * x_bar)
    resid = logv - (intercept + slope * x)
    leverage = 1.0 / y.size + (x - x_bar) ** 2 / sxx
    return resid / (1.0 - leverage)


def running_max_series(
    points: Iterable[TrendPoint],
    years: Sequence[float] | np.ndarray,
) -> np.ndarray:
    """Step series of "the most powerful to date" evaluated on a year grid.

    This is how the paper's Figure 4 country curves behave: each new system
    raises the plateau; nothing lowers it.  Years before the first point get
    ``nan`` (no capability yet).
    """
    pts = sorted(points, key=lambda p: p.year)
    grid = np.asarray(years, dtype=float)
    out = np.full(grid.shape, np.nan)
    if not pts:
        return out
    p_years = np.array([p.year for p in pts])
    p_vals = np.array([p.mtops for p in pts])
    # Running max of catalog values in year order.
    p_best = np.maximum.accumulate(p_vals)
    idx = np.searchsorted(p_years, grid, side="right") - 1
    mask = idx >= 0
    out[mask] = p_best[idx[mask]]
    return out
