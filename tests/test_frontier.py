"""Tests for the uncontrollability frontier — the paper's lower bound."""

import numpy as np
import pytest

from repro.controllability.frontier import (
    UNCONTROLLABILITY_LAG_YEARS,
    frontier_series,
    frontier_trend,
    lower_bound_uncontrollable,
    projected_frontier_mtops,
    uncontrollable_population,
)


class TestPopulation:
    def test_lag_enforced(self):
        for m in uncontrollable_population(1995.5):
            assert m.year + UNCONTROLLABILITY_LAG_YEARS <= 1995.5

    def test_population_grows_over_time(self):
        assert len(uncontrollable_population(1997.0)) >= len(
            uncontrollable_population(1994.0)
        )

    def test_marginal_widens_population(self):
        strict = uncontrollable_population(1995.5)
        wide = uncontrollable_population(1995.5, include_marginal=True)
        assert len(wide) >= len(strict)

    def test_no_vector_machines(self):
        from repro.machines.spec import Architecture

        for m in uncontrollable_population(1999.0):
            assert m.architecture is not Architecture.VECTOR


class TestLowerBound:
    def test_headline_mid_1995(self):
        """Paper: lower bound of 4,000-5,000 Mtops in mid-1995."""
        fp = lower_bound_uncontrollable(1995.5)
        assert 4_000.0 <= fp.mtops <= 5_000.0

    def test_headline_machine_identity(self):
        # The frontier is set by the Challenge/CS6400-class SMPs.
        fp = lower_bound_uncontrollable(1995.9)
        assert fp.machine is not None
        assert fp.machine.vendor in ("SGI", "Cray")

    def test_headline_late_1996_97(self):
        """Paper: 'likely to rise to approximately 7,500 Mtops by late
        1996 or 1997' — the reconstruction straddles that level across
        the window."""
        before = lower_bound_uncontrollable(1996.9).mtops
        after = lower_bound_uncontrollable(1997.5).mtops
        assert before <= 7_500.0 <= after
        assert before >= 5_000.0

    def test_headline_end_of_decade(self):
        """Paper: 'exceed 16,000 Mtops before the end of the decade'."""
        assert lower_bound_uncontrollable(1999.5).mtops > 16_000.0

    def test_zero_in_prehistory(self):
        fp = lower_bound_uncontrollable(1975.0)
        assert fp.mtops == 0.0
        assert fp.machine is None

    def test_rated_at_max_configuration(self):
        fp = lower_bound_uncontrollable(1995.5)
        assert fp.mtops == pytest.approx(
            fp.machine.max_configuration().ctp_mtops
        )

    def test_longer_lag_delays_frontier(self):
        fast = lower_bound_uncontrollable(1995.5, lag_years=1.0).mtops
        slow = lower_bound_uncontrollable(1995.5, lag_years=3.0).mtops
        assert slow <= fast


class TestSeriesAndTrend:
    def test_series_monotone_nondecreasing(self):
        years = np.arange(1990.0, 2000.0, 0.5)
        series = frontier_series(years)
        assert np.all(np.diff(series) >= 0)

    def test_series_matches_pointwise(self):
        years = [1994.0, 1996.0]
        series = frontier_series(years)
        assert series[0] == lower_bound_uncontrollable(1994.0).mtops
        assert series[1] == lower_bound_uncontrollable(1996.0).mtops

    def test_trend_fits_and_rises(self):
        t = frontier_trend()
        assert t.growth_per_year > 1.0

    def test_projection_beyond_catalog(self):
        assert projected_frontier_mtops(2001.0) > projected_frontier_mtops(1998.0)

    def test_projection_respects_lag(self):
        lagged = projected_frontier_mtops(1998.0, lag_years=2.0)
        immediate = projected_frontier_mtops(1998.0, lag_years=0.0)
        assert lagged < immediate


class TestLagBoundary:
    """A product qualifies at *exactly* ``year - lag`` — inclusively — and
    the scalar-filter, bisect, and series paths must agree on that edge."""

    @staticmethod
    def _some_qualify_year():
        from repro.machines.spec import Architecture
        from repro.controllability.index import Classification, assess
        from repro.machines.catalog import COMMERCIAL_SYSTEMS

        for m in sorted(COMMERCIAL_SYSTEMS, key=lambda m: m.year):
            if (m.architecture is not Architecture.VECTOR
                    and assess(m).classification
                    is Classification.UNCONTROLLABLE):
                return m, m.year + UNCONTROLLABILITY_LAG_YEARS
        raise AssertionError("catalog has no uncontrollable machine")

    def test_population_includes_exact_boundary(self):
        machine, boundary = self._some_qualify_year()
        assert machine in uncontrollable_population(boundary)
        assert machine not in uncontrollable_population(
            np.nextafter(boundary, -np.inf)
        )

    def test_bisect_path_includes_exact_boundary(self):
        machine, boundary = self._some_qualify_year()
        at = lower_bound_uncontrollable(boundary)
        just_before = lower_bound_uncontrollable(
            float(np.nextafter(boundary, -np.inf))
        )
        assert at.mtops >= machine.max_configuration().ctp_mtops
        assert just_before.mtops < at.mtops or just_before.machine is not None

    def test_scalar_and_bisect_agree_on_boundary_grid(self):
        """The lag boundary treated identically by the scalar population
        filter and the bisect index: at every machine's exact qualify
        date, the frontier equals the max rating of the filtered
        population."""
        from repro.machines.catalog import max_config_mtops

        boundaries = sorted(
            {m.year + UNCONTROLLABILITY_LAG_YEARS
             for m in uncontrollable_population(2005.0)}
        )
        assert boundaries
        series = frontier_series(boundaries)
        for year, from_bisect in zip(boundaries, series):
            population = uncontrollable_population(year)
            from_scalar = max(max_config_mtops(m) for m in population)
            assert from_bisect == pytest.approx(from_scalar), (
                f"scalar/bisect disagree at boundary year {year}"
            )

    def test_series_and_pointwise_agree_at_boundaries(self):
        _machine, boundary = self._some_qualify_year()
        eps_before = float(np.nextafter(boundary, -np.inf))
        series = frontier_series([eps_before, boundary])
        assert series[0] == lower_bound_uncontrollable(eps_before).mtops
        assert series[1] == lower_bound_uncontrollable(boundary).mtops
