"""Effective calculating rates and per-element theoretical performance.

The CTP formula first assigns each computing element an *effective
calculating rate* ``R`` in millions of theoretical operations per second,
then adjusts it for word length::

    TP = R * L,   L = 1/3 + WL/96

``R`` can be derived two ways, both provided here:

* from issue rates (``effective_rate``): clock frequency times theoretical
  operations issued per cycle — the natural description for pipelined
  microprocessors and vector units;
* from instruction execution times (``rate_from_timings``): the reciprocal
  of the effective time per operation — the form used in the regulatory
  text, convenient for non-pipelined historical machines (a 1-MIPS
  VAX-11/780 rates ~1 Mtops x L(32) ~ 0.67; the paper quotes 0.8).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro._util import check_positive
from repro.ctp.elements import ComputingElement

__all__ = ["effective_rate", "rate_from_timings", "theoretical_performance"]


def effective_rate(element: ComputingElement) -> float:
    """Effective calculating rate ``R`` of one element, in millions of
    theoretical operations per second.

    For elements whose fixed- and floating-point hardware issues
    concurrently the rates add; otherwise the faster unit governs.
    """
    r_fp = element.clock_mhz * element.fp_ops_per_cycle
    r_int = element.clock_mhz * element.int_ops_per_cycle
    if element.concurrent_int_fp:
        return r_fp + r_int
    return max(r_fp, r_int)


def rate_from_timings(op_times_us: Mapping[str, float], concurrent: bool = False) -> float:
    """Effective calculating rate from per-operation execution times.

    Parameters
    ----------
    op_times_us:
        Mapping from operation name (e.g. ``"fp_add"``, ``"fixed_add"``) to
        the effective execution (or pipeline issue) time in microseconds.
    concurrent:
        When True, the named operations execute in independent concurrent
        units and their rates add; otherwise the fastest operation defines
        the rate (the conservative single-issue reading).

    Returns
    -------
    float
        Rate in millions of theoretical operations per second.
    """
    if not op_times_us:
        raise ValueError("op_times_us must name at least one operation")
    rates = []
    for op, t in op_times_us.items():
        t = check_positive(t, f"execution time for {op!r}")
        rates.append(1.0 / t)
    if concurrent:
        return sum(rates)
    return max(rates)


def theoretical_performance(element: ComputingElement) -> float:
    """Theoretical performance ``TP = R * L`` of one element, in Mtops."""
    return effective_rate(element) * element.length_factor
