"""Open-loop load generation for the serving tier.

A closed-loop harness (N workers in a request/response lockstep, like
the engine-level ``serve_load`` bench) cannot see saturation: when the
server slows down, the harness slows its own offered rate to match, and
the latency it reports is flattered by exactly the queueing it failed to
generate — the *coordinated omission* trap.  An open-loop harness fixes
the offered rate ahead of time: arrivals are a Poisson process at
``rate_rps``, each request's latency is measured from its **scheduled**
arrival time, and a dispatcher that falls behind schedule charges the
lag to the requests it delayed, not to the server's flattery.

Determinism: arrival times come from ``numpy.random.default_rng(seed)``,
so two sweeps with the same seed offer identical schedules (wall-clock
completions still vary — this pins the *offered* load, not the answers).

The saturation knee is read from a rate sweep: the first offered rate
the server fails to sustain (achieved/offered < ``tolerance``).  Below
the knee an open-loop server keeps up and latency is flat; past it the
queue grows without bound and percentile latency explodes — the knee is
the capacity number a deployment can actually be provisioned against.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.obs.errors import ValidationError
from repro.obs.trace import counter_inc, trace

__all__ = ["LoadgenResult", "open_loop_run", "rate_sweep",
           "saturation_knee"]


@dataclass(frozen=True)
class LoadgenResult:
    """One open-loop run at one offered rate."""

    offered_rps: float          # the configured (nominal) arrival rate
    scheduled_rps: float        # the realized schedule's rate: a finite
                                # Poisson draw lands above or below the
                                # nominal rate, and sustain is judged
                                # against what was actually offered
    achieved_rps: float         # completions / wall duration
    duration_s: float           # first scheduled arrival -> last completion
    sent: int
    completed: int
    errors: int                 # send() raised or reported failure
    p50_ms: float               # latency from *scheduled* arrival
    p95_ms: float
    p99_ms: float
    max_ms: float

    @property
    def sustained(self) -> bool:
        """Kept up within 10% of the realized schedule, error-free."""
        return (self.errors == 0
                and self.achieved_rps >= 0.9 * self.scheduled_rps)

    def as_dict(self) -> dict:
        return {
            "offered_rps": self.offered_rps,
            "scheduled_rps": self.scheduled_rps,
            "achieved_rps": self.achieved_rps,
            "duration_s": self.duration_s,
            "sent": self.sent,
            "completed": self.completed,
            "errors": self.errors,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
        }


def _percentile_ms(latencies_s: Sequence[float], q: float) -> float:
    """Nearest-rank percentile in milliseconds (0.0 for no samples)."""
    if not latencies_s:
        return 0.0
    ordered = sorted(latencies_s)
    index = min(len(ordered) - 1,
                max(0, int(np.ceil(q * len(ordered))) - 1))
    return ordered[index] * 1e3


def arrival_offsets(rate_rps: float, n_requests: int,
                    seed: int = 0) -> np.ndarray:
    """Poisson-process arrival offsets (seconds from run start).

    Exponential inter-arrival gaps at ``rate_rps``, cumulatively summed;
    deterministic per seed.
    """
    if not rate_rps > 0:
        raise ValidationError("rate_rps must be positive",
                              context={"got": rate_rps, "valid": "> 0"})
    if n_requests < 1:
        raise ValidationError("n_requests must be >= 1",
                              context={"got": n_requests, "valid": ">= 1"})
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_rps, size=n_requests)
    return np.cumsum(gaps)


def open_loop_run(
    send: Callable[[object], bool],
    payloads: Sequence[object],
    rate_rps: float,
    duration_s: float = 2.0,
    seed: int = 0,
    max_inflight: int = 256,
) -> LoadgenResult:
    """Offer ``payloads`` (cycled) at a fixed Poisson rate; measure.

    ``send`` performs one request and returns truthy on success — it is
    called from worker threads and must be thread-safe (e.g. a
    :class:`~repro.serve.client.ServeClient` method, or a direct
    ``engine.handle`` closure).  Latency for each request runs from its
    *scheduled* arrival to its completion, so dispatcher or queue lag is
    charged as latency instead of silently thinning the offered load.

    ``max_inflight`` bounds the thread pool: a saturated server cannot
    recruit unbounded OS threads, it just accumulates schedule lag —
    which the percentiles then report honestly.
    """
    if not duration_s > 0:
        raise ValidationError("duration_s must be positive",
                              context={"got": duration_s, "valid": "> 0"})
    if not payloads:
        raise ValidationError("payloads must not be empty",
                              context={"got": 0, "valid": ">= 1 payload"})
    n_requests = max(1, int(round(rate_rps * duration_s)))
    offsets = arrival_offsets(rate_rps, n_requests, seed)

    latencies: list[float] = []
    errors = 0
    completed = 0
    done_at = 0.0
    lock = threading.Lock()
    inflight = threading.Semaphore(max_inflight)
    threads: list[threading.Thread] = []

    def _one(scheduled: float, payload: object) -> None:
        nonlocal errors, completed, done_at
        try:
            ok = bool(send(payload))
        except Exception:  # noqa: BLE001 — a crashed request is an error
            ok = False
        finish = time.perf_counter()
        with lock:
            if ok:
                completed += 1
                latencies.append(finish - scheduled)
            else:
                errors += 1
            done_at = max(done_at, finish)
        inflight.release()

    with trace("loadgen.run") as span:
        if span is not None:
            span.tags["rate_rps"] = float(rate_rps)
            span.tags["requests"] = n_requests
        counter_inc("loadgen.runs")
        start = time.perf_counter()
        for i in range(n_requests):
            scheduled = start + float(offsets[i])
            # Fire on schedule; when behind, fire immediately — the
            # request still carries its scheduled timestamp, so the lag
            # shows up as latency (open-loop honesty).
            delay = scheduled - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            inflight.acquire()
            thread = threading.Thread(
                target=_one, args=(scheduled, payloads[i % len(payloads)]),
                daemon=True)
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join()

    wall = max(done_at - start, 1e-9)
    return LoadgenResult(
        offered_rps=float(rate_rps),
        scheduled_rps=n_requests / float(offsets[-1]),
        achieved_rps=completed / wall,
        duration_s=wall,
        sent=n_requests,
        completed=completed,
        errors=errors,
        p50_ms=_percentile_ms(latencies, 0.50),
        p95_ms=_percentile_ms(latencies, 0.95),
        p99_ms=_percentile_ms(latencies, 0.99),
        max_ms=(max(latencies) * 1e3) if latencies else 0.0,
    )


def rate_sweep(
    send: Callable[[object], bool],
    payloads: Sequence[object],
    rates_rps: Sequence[float],
    duration_s: float = 2.0,
    seed: int = 0,
) -> list[LoadgenResult]:
    """One open-loop run per offered rate, ascending."""
    results = []
    for rate in sorted(float(r) for r in rates_rps):
        results.append(open_loop_run(send, payloads, rate,
                                     duration_s=duration_s, seed=seed))
    return results


def saturation_knee(results: Sequence[LoadgenResult],
                    tolerance: float = 0.9) -> float | None:
    """The first offered rate the server failed to sustain.

    Sustain means achieved/scheduled >= ``tolerance`` with zero errors —
    judged against the *realized* schedule rate, so finite-sample noise
    in the Poisson draw is not misread as server saturation.  Returns
    that offered rate, or ``None`` if every rate in the sweep was
    sustained (the knee lies beyond the sweep's range).
    """
    if not 0 < tolerance <= 1:
        raise ValidationError("tolerance must be in (0, 1]",
                              context={"got": tolerance,
                                       "valid": "(0, 1]"})
    for result in results:
        ratio = result.achieved_rps / result.scheduled_rps
        if result.errors > 0 or ratio < tolerance:
            return result.offered_rps
    return None
