"""The (scenario x threshold x year) tensor engine.

:func:`evaluate_scenario_grid` lifts the Chapter-5 policy grid from "one
world, N policies" to "M worlds x N policies": every world's scorecard
columns are produced by the *same* broadcasts
:func:`repro.diffusion.policy_grid._grid_counts` runs, with the scenario
knobs applied as **column-level overlays** —

========================  =================================================
knob                      patched column
========================  =================================================
``decontrol``             in-force threshold series (scenario-local bisect;
                          the global ``THRESHOLD_HISTORY`` is never touched)
``frontier_shock``        frontier running-max, scaled by the piecewise
                          multiplier curve *after* the shared bisect index
``drift_rate``/``floor``  requirement matrix, rebuilt with the scenario's
                          decay parameters (same Python-scalar ``pow``)
========================  =================================================

— so no global state is mutated, and the historical-identity world takes
the *literal* ``_grid_counts`` + ``requirement_matrix`` path, making its
slice of the tensor bit-exact against
:func:`repro.diffusion.policy_grid.evaluate_policy_grid` by construction
rather than by testing alone (the tests assert it anyway).

Epoch discipline: the whole tensor build runs under the catalog read
guard (writers queue behind it — an ``amend_threshold`` mid-build cannot
produce a mixed-epoch tensor), the build epoch is recorded on the
:class:`ScenarioGrid`, and every read accessor re-checks it, raising
:class:`~repro.obs.errors.ScenarioEpochError` across an epoch change.
The world-tensor cache and scenario drift matrices are registered in the
invalidation registry under the ``"scenarios"`` hook (stale under every
event kind), so ``reset_catalog()``'s invalidate-all sweep and the
precise per-event path both clear them.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.apps.requirements import (
    DRIFT_FLOOR_FRACTION,
    DRIFT_RATE_PER_YEAR,
    ApplicationRequirement,
)
from repro.catalog.registry import (
    EVENT_KINDS,
    current_epoch,
    read_guard,
    register_invalidation_hook,
)
from repro.controllability.frontier import frontier_series
from repro.diffusion.columns import application_columns, requirement_matrix
from repro.diffusion.policy import PolicyEffectiveness
from repro.diffusion.policy_grid import (
    _SLAB_THRESHOLDS,
    _grid_counts,
    _validated_axes,
    PolicyGrid,
)
from repro.machines.columns import machine_columns
from repro.market.installed import installed_units_above_batch
from repro.obs.errors import ScenarioEpochError, ValidationError
from repro.obs.trace import counter_inc, trace
from repro.parallel import partition_chunks, run_chunks
from repro.scenarios.spec import Scenario

__all__ = [
    "ScenarioGrid",
    "evaluate_scenario_grid",
    "clear_scenario_caches",
]

#: Memoized scenario-drift requirement matrices, keyed
#: ``(rate, floor, years)`` — the scenario-layer sibling of
#: ``_build_requirement_matrix``'s lru_cache.
_DRIFT_MATRICES: dict[tuple[float, float, tuple[float, ...]], np.ndarray] = {}

#: Completed world tensors, keyed
#: ``(epoch, scenarios, thresholds, years)``.  Bounded FIFO: repeated
#: serve batches over the same axes hit; catalog events purge the lot.
_GRID_CACHE: dict[tuple, "ScenarioGrid"] = {}
_GRID_CACHE_MAX = 32


def clear_scenario_caches() -> None:
    """Drop every cached world tensor and scenario drift matrix."""
    _DRIFT_MATRICES.clear()
    _GRID_CACHE.clear()


# Any catalog mutation stales a world tensor: machines feed the frontier
# and uncontrollable counts, thresholds feed the historical in-force
# series — so the hook is stale under every event kind, and also runs on
# the invalidate_all sweep reset_catalog() performs.
register_invalidation_hook(
    "scenarios", lambda epoch: clear_scenario_caches(), kinds=EVENT_KINDS)


def _scenario_requirements(
    rate: float, floor: float, years_key: tuple[float, ...]
) -> np.ndarray:
    """Requirement matrix under a scenario drift regime.

    The exact loop of
    :func:`repro.diffusion.columns._build_requirement_matrix` with the
    scenario's ``(rate, floor)`` in place of the paper's constants —
    Python-scalar ``pow`` per distinct elapsed, never a vectorized
    ``**`` — so the historical parameters reproduce the historical
    matrix bit for bit (asserted in tests, relied on nowhere).
    """
    key = (rate, floor, years_key)
    cached = _DRIFT_MATRICES.get(key)
    if cached is not None:
        return cached
    counter_inc("scenarios.requirement_builds")
    apps, base, firsts = application_columns()
    decay = 1.0 - rate
    factors: dict[float, float] = {}
    out = np.empty((len(apps), len(years_key)))
    for a, first in enumerate(float(f) for f in firsts):
        for y, year in enumerate(years_key):
            elapsed = max(0.0, year - first)
            factor = factors.get(elapsed)
            if factor is None:
                factor = factors[elapsed] = max(decay ** elapsed, floor)
            out[a, y] = base[a] * factor
    out.setflags(write=False)
    _DRIFT_MATRICES[key] = out
    return out


def _world_columns(
    scenario: Scenario, t: np.ndarray, years_key: tuple[float, ...]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray,
           np.ndarray]:
    """One world's grid arrays: ``(frontier, requirements, protected,
    illusory, burden, uncontrollable)``.

    The historical identity delegates to the existing engine outright;
    overlay worlds re-run the same broadcasts against patched columns.
    """
    if scenario.is_historical:
        frontier, protected, illusory, burden, uncontrollable = (
            _grid_counts(t, years_key))
        return (frontier, requirement_matrix(years_key), protected,
                illusory, burden, uncontrollable)

    y = np.asarray(years_key, dtype=float)
    frontier = frontier_series(y) * scenario.frontier_multipliers(y)
    if scenario.drift_rate is None and scenario.drift_floor is None:
        requirements = requirement_matrix(years_key)
    else:
        rate = (DRIFT_RATE_PER_YEAR if scenario.drift_rate is None
                else scenario.drift_rate)
        floor = (DRIFT_FLOOR_FRACTION if scenario.drift_floor is None
                 else scenario.drift_floor)
        requirements = _scenario_requirements(rate, floor, years_key)

    above_frontier = requirements >= frontier[None, :]
    protected = np.empty((t.size, y.size), dtype=np.int64)
    covered_total = np.empty_like(protected)
    for a in range(0, t.size, _SLAB_THRESHOLDS):
        slab = t[a:a + _SLAB_THRESHOLDS]
        covered = requirements[None, :, :] >= slab[:, None, None]
        protected[a:a + _SLAB_THRESHOLDS] = (
            covered & above_frontier[None, :, :]).sum(axis=1)
        covered_total[a:a + _SLAB_THRESHOLDS] = covered.sum(axis=1)
    illusory = covered_total - protected

    # Burden against the *shocked* frontier: the installed suffix tables
    # are world-independent (no knob patches the machine catalog), only
    # the frontier cut point moves.
    burden = np.empty((t.size, y.size))
    for j, year in enumerate(years_key):
        units_above = installed_units_above_batch(t, year) if t.size else \
            np.empty(0)
        units_frontier = (
            float(installed_units_above_batch([frontier[j]], year)[0])
            if frontier[j] > 0.0 else 0.0
        )
        raw = units_above - units_frontier
        burden[:, j] = np.where(
            t < frontier[j], np.maximum(raw, 0.0), 0.0)

    cols = machine_columns()
    sub = cols.uncontrollable
    ratings = cols.max_config_mtops[sub]
    intros = cols.intro_years[sub]
    covered_m = (ratings[None, :] >= t[:, None]).astype(np.int64)
    available = (intros[:, None] <= y[None, :]).astype(np.int64)
    uncontrollable = covered_m @ available
    return frontier, requirements, protected, illusory, burden, \
        uncontrollable


def _world_slab(
    scenarios: tuple[Scenario, ...],
    thresholds_key: tuple[float, ...],
    years_key: tuple[float, ...],
) -> tuple[np.ndarray, ...]:
    """Module-level (picklable) worker: a chunk of worlds, stacked.

    Fan-out slabs the *scenario* axis: every per-year shared quantity
    (frontier index, suffix tables, requirement matrices) is identical
    across slabs, so stacking is bit-exact for any chunk layout.
    """
    t = np.asarray(thresholds_key, dtype=float)
    parts = [_world_columns(s, t, years_key) for s in scenarios]
    return tuple(np.stack([p[k] for p in parts]) for k in range(6))


@dataclass(frozen=True)
class ScenarioGrid:
    """Chapter-5 scorecards for every (scenario, threshold, year) cell.

    World ``w`` is ``scenarios[w]``; the count/burden tensors are indexed
    ``[w, i, j]`` for ``thresholds[i]`` at ``years[j]``.  All arrays are
    read-only, and **every accessor re-checks the catalog epoch**: a grid
    built at epoch N raises :class:`ScenarioEpochError` once any catalog
    event has moved the world past N.
    """

    scenarios: tuple[Scenario, ...]
    thresholds: np.ndarray
    years: np.ndarray
    #: Per-world frontier series ``(n_worlds, n_years)`` (shock applied).
    frontier_mtops: np.ndarray
    #: Per-world requirement matrices ``(n_worlds, n_apps, n_years)``.
    requirements: np.ndarray = field(repr=False)
    protected_counts: np.ndarray
    illusory_counts: np.ndarray
    burden_units: np.ndarray
    uncontrollable_counts: np.ndarray
    #: Credibility of every candidate threshold: ``t >= frontier``.
    credible: np.ndarray
    #: The threshold each world's own timeline imposes per year (0.0
    #: before the world's first era).
    in_force_mtops: np.ndarray
    #: Whether the in-force threshold is itself credible (and exists).
    in_force_credible: np.ndarray
    #: Catalog epoch the tensor was evaluated under.
    epoch: int = field(default=0, compare=False)

    @property
    def shape(self) -> tuple[int, int, int]:
        return (len(self.scenarios), int(self.thresholds.size),
                int(self.years.size))

    def _check_epoch(self) -> None:
        live = current_epoch()
        if live != self.epoch:
            raise ScenarioEpochError(
                "scenario grid was built under an earlier catalog epoch; "
                "re-evaluate before reading",
                context={"built_at": self.epoch, "current": live},
            )

    def world_index(self, scenario: Scenario | str) -> int:
        """The world axis position of ``scenario`` (by value or name)."""
        self._check_epoch()
        for w, s in enumerate(self.scenarios):
            if s == scenario or s.name == scenario:
                return w
        name = scenario if isinstance(scenario, str) else scenario.name
        raise ValidationError(
            f"scenario {name!r} is not on this grid",
            context={"got": name,
                     "valid": [s.name for s in self.scenarios]},
        )

    def result_at(self, w: int, i: int, j: int) -> PolicyEffectiveness:
        """The exact scalar scorecard at one tensor cell.

        Same reconstruction as :meth:`PolicyGrid.result_at`, against
        world ``w``'s requirement and frontier columns.
        """
        self._check_epoch()
        threshold = float(self.thresholds[i])
        year = float(self.years[j])
        frontier = float(self.frontier_mtops[w, j])
        apps, _base, _firsts = application_columns()
        column = self.requirements[w, :, j]
        protected: list[ApplicationRequirement] = []
        illusory: list[ApplicationRequirement] = []
        for a, app in enumerate(apps):
            requirement = float(column[a])
            if requirement < threshold:
                continue
            if requirement >= frontier:
                protected.append(app)
            else:
                illusory.append(app)
        cols = machine_columns()
        uncontrollable_covered = tuple(
            m for k, m in enumerate(cols.machines)
            if cols.intro_years[k] <= year
            and cols.max_config_mtops[k] >= threshold
            and cols.uncontrollable[k]
        )
        return PolicyEffectiveness(
            year=year,
            threshold_mtops=threshold,
            frontier_mtops=frontier,
            protected_applications=tuple(protected),
            illusory_applications=tuple(illusory),
            burden_units=float(self.burden_units[w, i, j]),
            uncontrollable_covered_systems=uncontrollable_covered,
        )

    def as_policy_grid(self, w: int) -> PolicyGrid:
        """World ``w``'s slice repackaged as a :class:`PolicyGrid`.

        For the historical world this *is* the grid
        ``evaluate_policy_grid`` returns (bit for bit); for overlay
        worlds it is the grid that world's columns imply, so every
        downstream ``PolicyGrid`` consumer works per world unchanged.
        """
        self._check_epoch()
        return PolicyGrid(
            thresholds=self.thresholds,
            years=self.years,
            frontier_mtops=self.frontier_mtops[w],
            requirements=self.requirements[w],
            protected_counts=self.protected_counts[w],
            illusory_counts=self.illusory_counts[w],
            burden_units=self.burden_units[w],
            uncontrollable_counts=self.uncontrollable_counts[w],
            credible=self.credible[w],
            epoch=self.epoch,
        )

    def divergence_year(self, w: int, baseline: int = 0) -> float | None:
        """First grid year where world ``w`` differs from ``baseline``
        in any column (frontier, requirements, in-force threshold, or
        any scorecard count at any candidate threshold); ``None`` when
        the worlds agree everywhere on the grid."""
        self._check_epoch()
        differs = (
            (self.frontier_mtops[w] != self.frontier_mtops[baseline])
            | (self.in_force_mtops[w] != self.in_force_mtops[baseline])
            | (self.requirements[w] != self.requirements[baseline]).any(
                axis=0)
            | (self.protected_counts[w]
               != self.protected_counts[baseline]).any(axis=0)
            | (self.illusory_counts[w]
               != self.illusory_counts[baseline]).any(axis=0)
            | (self.burden_units[w]
               != self.burden_units[baseline]).any(axis=0)
            | (self.uncontrollable_counts[w]
               != self.uncontrollable_counts[baseline]).any(axis=0)
        )
        hits = np.flatnonzero(differs)
        return float(self.years[hits[0]]) if hits.size else None

    def credibility_loss_year(self, w: int) -> float | None:
        """First grid year where world ``w``'s own in-force threshold
        sits below that world's frontier — the moment its control regime
        stops being credible; ``None`` if it never does on this grid."""
        self._check_epoch()
        lost = (self.in_force_mtops[w] > 0.0) & ~self.in_force_credible[w]
        hits = np.flatnonzero(lost)
        return float(self.years[hits[0]]) if hits.size else None

    def burden_delta(self, w: int, baseline: int = 0) -> float:
        """Total licensing burden of world ``w`` minus ``baseline``,
        summed over every (threshold, year) cell — positive means the
        world licenses more units without security benefit."""
        self._check_epoch()
        return float(self.burden_units[w].sum()
                     - self.burden_units[baseline].sum())


def evaluate_scenario_grid(
    scenarios: Sequence[Scenario],
    thresholds: Sequence[float] | np.ndarray,
    years: Sequence[float] | np.ndarray,
    max_workers: int = 1,
    n_chunks: int | None = None,
    _caller_holds_guard: bool = False,
) -> ScenarioGrid:
    """Evaluate the full (scenario x threshold x year) tensor.

    The build holds the catalog read guard end to end (writers queue
    until the tensor is complete), so every world is computed against
    one consistent epoch, recorded on the result.  With
    ``max_workers > 1`` the *scenario* axis is fanned out over worker
    processes; results are bit-identical for any worker count.

    ``_caller_holds_guard`` is for dispatch paths that already hold the
    read guard (the serve MicroBatcher): the guard is **not** reentrant,
    so re-acquiring it under a waiting writer would deadlock.
    """
    scenarios = tuple(scenarios)
    if not scenarios:
        raise ValidationError(
            "scenarios must be non-empty",
            context={"got": 0, "valid": ">= 1 scenario"},
        )
    for s in scenarios:
        if not isinstance(s, Scenario):
            raise ValidationError(
                "scenarios must be Scenario instances",
                context={"got": type(s).__name__, "valid": "Scenario"},
            )
    if len(set(scenarios)) != len(scenarios):
        raise ValidationError(
            "scenarios must be distinct",
            context={"got": [s.name for s in scenarios],
                     "valid": "no duplicate worlds"},
        )
    t, y = _validated_axes(thresholds, years)
    thresholds_key = tuple(float(v) for v in t)
    years_key = tuple(float(v) for v in y)

    guard = nullcontext() if _caller_holds_guard else read_guard()
    with guard:
        epoch = current_epoch()
        cache_key = (epoch, scenarios, thresholds_key, years_key)
        cached = _GRID_CACHE.get(cache_key)
        if cached is not None:
            counter_inc("scenarios.grid_hits")
            return cached
        counter_inc("scenarios.grid_builds")
        counter_inc("scenarios.grid_points",
                    len(scenarios) * t.size * y.size)
        with trace("scenarios.grid") as span:
            if span is not None:
                span.tags["worlds"] = len(scenarios)
                span.tags["thresholds"] = int(t.size)
                span.tags["years"] = int(y.size)
                span.tags["workers"] = max_workers
            if max_workers > 1 and len(scenarios) > 1:
                if n_chunks is None:
                    n_chunks = len(scenarios)
                slabs = partition_chunks(len(scenarios), n_chunks)
                chunk_args = [(scenarios[a:b], thresholds_key, years_key)
                              for a, b in slabs]
                parts = run_chunks(_world_slab, chunk_args, max_workers)
                stacked = tuple(
                    np.concatenate([p[k] for p in parts])
                    for k in range(6))
            else:
                stacked = _world_slab(scenarios, thresholds_key,
                                      years_key)
            (frontier, requirements, protected, illusory, burden,
             uncontrollable) = stacked
            in_force = np.stack([
                np.asarray(s.threshold_in_force_series(y))
                for s in scenarios
            ])
            credible = t[None, :, None] >= frontier[:, None, :]
            in_force_credible = ((in_force >= frontier)
                                 & (in_force > 0.0))
            for arr in (t, y, frontier, requirements, protected, illusory,
                        burden, uncontrollable, credible, in_force,
                        in_force_credible):
                arr.setflags(write=False)
            grid = ScenarioGrid(
                scenarios=scenarios,
                thresholds=t,
                years=y,
                frontier_mtops=frontier,
                requirements=requirements,
                protected_counts=protected,
                illusory_counts=illusory,
                burden_units=burden,
                uncontrollable_counts=uncontrollable,
                credible=credible,
                in_force_mtops=in_force,
                in_force_credible=in_force_credible,
                epoch=epoch,
            )
            while len(_GRID_CACHE) >= _GRID_CACHE_MAX:
                _GRID_CACHE.pop(next(iter(_GRID_CACHE)))
            _GRID_CACHE[cache_key] = grid
            return grid
