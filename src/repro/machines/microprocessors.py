"""Microprocessor catalog (Figure 5: "Advances in 64-bit Microprocessors").

The paper's central technology observation is that commodity microprocessors
— developed for the workstation market — became the building blocks of
essentially all parallel systems, Western and non-Western alike.  This
module reconstructs the era's catalog.  Clock rates, issue widths, and
introduction years are standard public record; per-chip Mtops ratings are
computed from the CTP reconstruction and land within the era's published
export-control ratings (e.g. ~533 Mtops for a 200 MHz Pentium Pro against
the widely reported 541).

Figure 5 plots the 64-bit subset (``sixty_four_bit_micros``); the wider
catalog (transputers, x86, DSPs) feeds the foreign-systems tables and the
cluster models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import check_year
from repro.ctp.elements import ComputingElement
from repro.ctp.rates import theoretical_performance

__all__ = [
    "Microprocessor",
    "MICROPROCESSORS",
    "microprocessors_by_year",
    "sixty_four_bit_micros",
    "find_micro",
]


@dataclass(frozen=True)
class Microprocessor:
    """A commodity microprocessor as a rateable computing element."""

    name: str
    vendor: str
    year: float
    element: ComputingElement
    peak_mflops: float | None = None
    approx: bool = False
    notes: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        check_year(self.year, f"{self.name}: year")

    @property
    def mtops(self) -> float:
        """Theoretical performance of one chip, in Mtops."""
        return theoretical_performance(self.element)

    @property
    def word_bits(self) -> float:
        return self.element.word_bits


def _ce(
    name: str,
    clock: float,
    word: float,
    fp: float,
    integer: float,
    concurrent: bool = True,
) -> ComputingElement:
    return ComputingElement(
        name=name,
        clock_mhz=clock,
        word_bits=word,
        fp_ops_per_cycle=fp,
        int_ops_per_cycle=integer,
        concurrent_int_fp=concurrent,
    )


MICROPROCESSORS: tuple[Microprocessor, ...] = (
    # --- transputers (the foreign-systems workhorse of Tables 1-3) -------
    Microprocessor(
        "T800", "INMOS", 1987.0, _ce("T800", 25.0, 32.0, 0.06, 0.4, False),
        peak_mflops=1.5, approx=True,
        notes="Built-in links made it the easiest multiprocessor brick.",
    ),
    Microprocessor(
        "T9000", "INMOS", 1994.0, _ce("T9000", 20.0, 32.0, 0.5, 1.5, True),
        peak_mflops=10.0, approx=True,
        notes="Late and slow; used in the Quinghua SmC project.",
    ),
    # --- i860: the earliest widely available 64-bit micro -----------------
    Microprocessor(
        "i860XR", "Intel", 1989.0, _ce("i860XR", 40.0, 64.0, 2.0, 3.0, True),
        peak_mflops=80.0,
        notes=(
            "Dual-operation FP plus concurrent 64-bit integer/graphics unit; "
            "node of iPSC/860 and many foreign systems."
        ),
    ),
    Microprocessor(
        "i860XP", "Intel", 1991.0, _ce("i860XP", 50.0, 64.0, 2.0, 3.0, True),
        peak_mflops=100.0,
        notes="Paragon node; Intel never shipped a true successor.",
    ),
    # --- Alpha: the clock-rate leader -------------------------------------
    Microprocessor(
        "Alpha 21064-150", "DEC", 1992.2, _ce("21064", 150.0, 64.0, 1.0, 1.0, True),
        peak_mflops=150.0, notes="Cray T3D node.",
    ),
    Microprocessor(
        "Alpha 21066-166", "DEC", 1993.8, _ce("21066", 166.0, 64.0, 1.0, 1.0, True),
        peak_mflops=166.0, approx=True,
        notes="Budget Alpha with an integrated (slow) memory controller.",
    ),
    Microprocessor(
        "Alpha 21064A-275", "DEC", 1994.0, _ce("21064A", 275.0, 64.0, 1.0, 1.0, True),
        peak_mflops=275.0,
    ),
    Microprocessor(
        "Alpha 21164-300", "DEC", 1995.2, _ce("21164", 300.0, 64.0, 2.0, 2.0, True),
        peak_mflops=600.0, notes="Quad-issue; 1995 single-chip performance leader.",
    ),
    # --- MIPS --------------------------------------------------------------
    Microprocessor(
        "R4000-100", "MIPS/SGI", 1991.8, _ce("R4000", 100.0, 64.0, 1.0, 1.0, False),
        peak_mflops=33.0, approx=True,
        notes="The first 64-bit MIPS part.",
    ),
    Microprocessor(
        "R4400-150", "MIPS/SGI", 1993.0, _ce("R4400", 150.0, 64.0, 1.0, 1.0, False),
        peak_mflops=50.0, notes="Challenge / Onyx node.",
    ),
    Microprocessor(
        "R8000-75", "MIPS/SGI", 1994.5, _ce("R8000", 75.0, 64.0, 4.0, 2.0, True),
        peak_mflops=300.0, notes="PowerChallenge node; dual fused multiply-add.",
    ),
    Microprocessor(
        "R10000-200", "MIPS/SGI", 1996.0, _ce("R10000", 200.0, 64.0, 2.0, 2.0, True),
        peak_mflops=400.0, notes="Forthcoming at study time (Chapter 3).",
    ),
    # --- POWER / PowerPC ---------------------------------------------------
    Microprocessor(
        "POWER2-66", "IBM", 1993.7, _ce("POWER2", 66.5, 64.0, 4.0, 2.0, True),
        peak_mflops=266.0, notes="SP2 thin/wide node engine.",
    ),
    Microprocessor(
        "PowerPC 601-80", "IBM/Motorola", 1993.3, _ce("PPC601", 80.0, 64.0, 1.0, 1.0, True),
        peak_mflops=80.0,
    ),
    Microprocessor(
        "PowerPC 604-133", "IBM/Motorola", 1995.3, _ce("PPC604", 133.0, 64.0, 1.0, 2.0, True),
        peak_mflops=133.0,
    ),
    # --- SPARC -------------------------------------------------------------
    Microprocessor(
        "SuperSPARC-40", "Sun/TI", 1992.4, _ce("SuperSPARC", 40.0, 32.0, 1.0, 1.2, True),
        peak_mflops=40.0, notes="SPARCstation 10 / SPARCcenter / CS6400 node.",
    ),
    Microprocessor(
        "SuperSPARC-60", "Sun/TI", 1993.8, _ce("SuperSPARC+", 60.0, 32.0, 1.0, 1.2, True),
        peak_mflops=60.0, approx=True,
    ),
    Microprocessor(
        "microSPARC-50", "Sun/TI", 1992.9, _ce("microSPARC", 50.0, 32.0, 0.5, 1.0, False),
        peak_mflops=10.0, approx=True,
        notes="The volume desktop part below the SuperSPARC line.",
    ),
    Microprocessor(
        "UltraSPARC-167", "Sun", 1995.7, _ce("UltraSPARC", 167.0, 64.0, 2.0, 2.0, True),
        peak_mflops=334.0,
    ),
    # --- HP PA-RISC ---------------------------------------------------------
    Microprocessor(
        "PA-7100-99", "HP", 1992.6, _ce("PA-7100", 99.0, 64.0, 2.0, 1.0, True),
        peak_mflops=198.0, notes="Convex Exemplar SPP1000 node.",
    ),
    Microprocessor(
        "PA-7100LC-80", "HP", 1994.0, _ce("PA-7100LC", 80.0, 64.0, 2.0, 1.0, True),
        peak_mflops=160.0, approx=True,
        notes="Low-cost PA-RISC; the multimedia-instruction pioneer.",
    ),
    Microprocessor(
        "PA-7200-120", "HP", 1995.0, _ce("PA-7200", 120.0, 64.0, 2.0, 2.0, True),
        peak_mflops=240.0,
    ),
    Microprocessor(
        "PA-8000-180", "HP", 1996.3, _ce("PA-8000", 180.0, 64.0, 2.0, 2.0, True),
        peak_mflops=720.0,
    ),
    # --- x86 ----------------------------------------------------------------
    Microprocessor(
        "486DX2-66", "Intel", 1992.6, _ce("486DX2", 66.0, 32.0, 0.33, 1.0, False),
        peak_mflops=22.0, approx=True,
    ),
    Microprocessor(
        "Pentium-66", "Intel", 1993.3, _ce("Pentium", 66.0, 32.0, 1.0, 2.0, True),
        peak_mflops=66.0, notes="Unisys OPUS node.",
    ),
    Microprocessor(
        "Pentium-133", "Intel", 1995.4, _ce("Pentium-133", 133.0, 32.0, 1.0, 2.0, True),
        peak_mflops=133.0, approx=True,
    ),
    Microprocessor(
        "Pentium Pro-200", "Intel", 1995.9, _ce("P6", 200.0, 32.0, 1.0, 3.0, True),
        peak_mflops=200.0,
        notes="~533 Mtops computed; era export rating widely reported as 541.",
    ),
    # --- early RISC / DSP (foreign-systems building blocks) -----------------
    Microprocessor(
        "MC88100-20", "Motorola", 1989.0, _ce("88100", 20.0, 32.0, 1.0, 1.0, True),
        peak_mflops=20.0, notes="Chapter 3's 1989 clock-rate baseline.",
    ),
    Microprocessor(
        "TMS320C40-50", "Texas Instruments", 1991.5, _ce("C40", 50.0, 32.0, 1.0, 1.0, False),
        peak_mflops=50.0, approx=True,
        notes="DSP popular in Russian and Chinese signal-processing arrays.",
    ),
    Microprocessor(
        "i8086+8087", "Intel", 1980.0, _ce("8086", 8.0, 16.0, 0.01, 0.1, False),
        peak_mflops=0.05, approx=True, notes="India's MH1 node (1986).",
    ),
)


_BY_NAME = {m.name: m for m in MICROPROCESSORS}
assert len(_BY_NAME) == len(MICROPROCESSORS), "duplicate microprocessor names"


_BY_NORMALIZED_NAME = {" ".join(n.split()).casefold(): m
                       for n, m in _BY_NAME.items()}
assert len(_BY_NORMALIZED_NAME) == len(_BY_NAME), \
    "microprocessor names collide after normalization"


def find_micro(name: str) -> Microprocessor:
    """Look up a microprocessor by name (case/whitespace-insensitive).

    A miss raises :class:`repro.obs.CatalogLookupError` naming the
    closest cataloged names.
    """
    import difflib

    from repro.obs.errors import CatalogLookupError

    micro = _BY_NORMALIZED_NAME.get(" ".join(str(name).split()).casefold())
    if micro is not None:
        return micro
    closest = difflib.get_close_matches(
        str(name).casefold(), list(_BY_NORMALIZED_NAME), n=3, cutoff=0.3
    )
    suggestions = [_BY_NORMALIZED_NAME[c].name for c in closest]
    hint = f"; closest: {', '.join(suggestions)}" if suggestions else ""
    raise CatalogLookupError(
        f"unknown microprocessor {name!r}{hint}",
        context={"got": name, "closest": suggestions},
    )


def microprocessors_by_year(through: float | None = None) -> list[Microprocessor]:
    """Catalog sorted by introduction year, optionally truncated."""
    micros = sorted(MICROPROCESSORS, key=lambda m: (m.year, m.name))
    if through is not None:
        micros = [m for m in micros if m.year <= through]
    return micros


def sixty_four_bit_micros(through: float | None = None) -> list[Microprocessor]:
    """The Figure 5 population: 64-bit microprocessors by year."""
    return [m for m in microprocessors_by_year(through) if m.word_bits >= 64.0]
