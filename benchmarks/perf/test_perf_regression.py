"""Perf regression gates (``pytest -m perf benchmarks/perf``).

Marked ``perf`` and excluded from the default run: wall-clock assertions
are load-sensitive, so they gate only when invoked deliberately (CI runs
the ``--quick`` configuration as a smoke test).  The floors are the PR's
acceptance criteria — the two named hot paths must stay >= 5x over the
seed scalar algorithms — with generous headroom below the measured
speedups (hundreds to tens of thousands x).
"""

from __future__ import annotations

import os

import pytest

from repro.perf.workloads import WORKLOAD_NAMES, run_benchmarks

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def results() -> dict:
    payload = run_benchmarks(quick=True, output=None)
    return {w["name"]: w for w in payload["workloads"]}


def test_all_workloads_ran(results):
    assert set(results) == set(WORKLOAD_NAMES)
    for w in results.values():
        assert w["scalar"]["best_seconds"] > 0
        assert w["batch"]["best_seconds"] > 0


def test_bound_sensitivity_speedup_floor(results):
    assert results["bound_sensitivity_mc"]["speedup"] >= 5.0


def test_frontier_grid_speedup_floor(results):
    assert results["frontier_year_grid"]["speedup"] >= 5.0


def test_batch_rating_speedup_floor(results):
    assert results["batch_ctp_rating"]["speedup"] >= 5.0


def test_serve_load_batching_floor(results):
    # Micro-batching must clearly beat per-request dispatch even in the
    # quick configuration on a noisy CI box; full runs measure >= 3x
    # (recorded in BENCH_perf.json).
    assert results["serve_load"]["speedup"] >= 1.5


def test_serve_load_responses_bit_identical(results):
    # Per-request results are independent of batch-mates, so the
    # max_batch=1 and max_batch=64 runs must agree exactly.
    assert results["serve_load"]["max_rel_err"] == 0.0
    assert sum(results["serve_load"]["batch_size_histogram"].values()) > 0


def test_cluster_sweep_speedup_floor(results):
    # The whole-array sweep measures ~28x over the scalar loop on the
    # full 7 x 10 x 256 grid; 20x leaves headroom for CI noise.
    assert results["cluster_sweep_grid"]["speedup"] >= 20.0


def test_cluster_sweep_bit_exact(results):
    # Not a tolerance: the sweep replicates the scalar model's operation
    # order, so every feasible grid point must match to the last bit.
    assert results["cluster_sweep_grid"]["max_rel_err"] == 0.0


def test_parallel_keysearch_deterministic(results):
    # 1 worker and N workers must return identical result objects
    # (found keys, keys tried, chunk count) regardless of core count.
    assert results["parallel_keysearch"]["max_rel_err"] == 0.0
    assert results["parallel_keysearch"]["found_keys"]


def test_parallel_keysearch_speedup_floor(results):
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"only {cores} CPU core(s): process fan-out cannot "
                    f"beat serial here; parity still asserted above")
    # Pool startup is amortized over ~0.5 s of work, so 1.5x is a
    # conservative floor on a 4-core runner.
    assert results["parallel_keysearch"]["speedup"] >= 1.5


def test_policy_grid_speedup_floor(results):
    # The columnar grid measures ~45x over per-point scalar scorecards in
    # the quick configuration, with the per-year caches rebuilt on every
    # timed call; 20x leaves headroom for CI noise.
    assert results["policy_grid"]["speedup"] >= 20.0


def test_policy_grid_bit_exact(results):
    # Not a tolerance: counts, burden, frontier, and the reconstructed
    # per-cell scorecards (membership tuples included) must equal the
    # scalar path exactly on every lattice point.
    assert results["policy_grid"]["max_rel_err"] == 0.0


def test_acquisition_mc_speedup_floor(results):
    # One shared RNG draw pair and one sorted market scan vs per-target
    # rescans and private draws measures ~25x; 20x is the gate.
    assert results["acquisition_mc"]["speedup"] >= 20.0


def test_acquisition_mc_bit_exact(results):
    # Per-draw parity under the shared seed path: every stat (including
    # infeasible-target infinities) and every premium dataclass must
    # match the scalar reference exactly.
    assert results["acquisition_mc"]["max_rel_err"] == 0.0


def test_snapshot_cold_start_speedup_floor(results):
    # Loading the mmap snapshot measures ~10x over rebuilding every
    # columnar store in process; 5x is the acceptance floor.
    assert results["snapshot_cold_start"]["speedup"] >= 5.0


def test_snapshot_cold_start_zero_rebuilds(results):
    # The whole point of the artifact: priming from disk must tick no
    # build counter, and the installed stores must be bit-identical to a
    # fresh in-process build (max_rel_err doubles as the parity flag).
    row = results["snapshot_cold_start"]
    assert row["max_rel_err"] == 0.0
    assert all(delta == 0 for delta in row["build_counter_deltas"].values())


def test_serve_prefork_responses_bit_identical(results):
    # The fleet runs the identical engine over the identical snapshot
    # state, so the /rate and /policy probe set must return identical
    # bodies from both process models — always, on any box.
    assert results["serve_prefork_load"]["max_rel_err"] == 0.0


def test_serve_prefork_throughput_floor(results):
    row = results["serve_prefork_load"]
    cores = os.cpu_count() or 1
    if cores < 4:
        reason = row.get("gate_skipped",
                         f"only {cores} CPU core(s)")
        pytest.skip(reason)
    # N workers over N cores must at least double peak throughput vs one
    # process; parity is asserted unconditionally above.
    assert row["speedup"] >= 2.0


def test_catalog_churn_parity(results):
    # Incremental index patching must be bit-identical to a full rebuild
    # after EVERY event (max_rel_err encodes the per-event parity check),
    # and all four event kinds must actually have applied.
    row = results["catalog_churn"]
    assert row["max_rel_err"] == 0.0
    assert row["events_applied"] >= 3
    assert row["parity_per_event"] and all(row["parity_per_event"])
    assert row["request_failures"] == 0


def test_catalog_churn_incremental_speedup_floor(results):
    # Patching a handful of rows must clearly beat rebuilding every
    # derived store per event (measured ~8-9x in quiet-phase quick mode).
    assert results["catalog_churn"]["speedup"] >= 2.0


def test_catalog_churn_p99_under_churn(results):
    row = results["catalog_churn"]
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"only {cores} CPU core(s): closed-loop readers "
                    f"time-slice the event applier and p99 measures the "
                    f"scheduler, not the epoch lock")
    # Reads under churn must stay responsive: the write guard holds
    # readers out only while a handful of rows are patched.
    assert row["p99_ms"] < 250.0


def test_scenario_grid_speedup_floor(results):
    # One 8-world tensor build vs 8 sequential cold single-world builds
    # measures ~6-7x (the shared frontier index, suffix tables, and
    # requirement matrices are rebuilt once instead of per world); 5x is
    # the acceptance floor.
    assert results["scenario_grid"]["speedup"] >= 5.0


def test_scenario_grid_identity_bit_exact(results):
    # Not a tolerance: the historical world's tensor slice must equal
    # evaluate_policy_grid array for array, and every world's slice must
    # equal its own single-world build.
    row = results["scenario_grid"]
    assert row["max_rel_err"] == 0.0
    assert row["worlds"] == 8


def test_policy_point_queries_speedup_floor(results):
    # A warm tile hit answers in tens of microseconds vs ~1-2 ms for a
    # full-lattice build per query (measured ~30x in quick mode); the
    # PR's acceptance gate is 20x on BOTH the min-of-k total and the
    # per-query p99 tail.
    row = results["policy_point_queries"]
    assert row["speedup"] >= 20.0
    assert row["p99_speedup"] >= 20.0


def test_policy_point_queries_bit_exact(results):
    # Not a tolerance: streamed answers equal the warm monolithic grid
    # cell-for-cell, tile-assembled sweeps are tobytes-identical to the
    # monolithic builds, and parity is re-proved after every catalog
    # event — with the timed tile phase ticking zero full-grid builds.
    row = results["policy_point_queries"]
    assert row["max_rel_err"] == 0.0
    assert row["grid_builds_during_tile_phase"] == 0
    assert row["events_applied"] >= 3
    assert row["parity_per_event"] and all(row["parity_per_event"])
    assert row["tiles_built"] > 0


def test_agentic_mix_speedup_floor(results):
    # One fused multi-query plan over the ~200-query mixed stream must
    # beat per-request sequential dispatch by the PR's acceptance gate
    # (measured ~7x quick: review dedup, shared CTP batch, shared
    # matrix pass, tile regroup, era reuse).
    assert results["agentic_mix"]["speedup"] >= 3.0


def test_agentic_mix_byte_identical(results):
    # Not a tolerance: every fused slot's JSON body must serialize
    # identically to its per-request sequential counterpart, and the
    # planner must actually have fused work (CSE hits, fused ops, and
    # review->era reuses all nonzero on this mix).
    row = results["agentic_mix"]
    assert row["max_rel_err"] == 0.0
    assert row["cse_hits"] > 0
    assert row["ops_fused"] > 0
    assert row["reuse_hits"] > 0
    assert row["unique_queries"] + row["cse_hits"] == row["queries"]


def test_batch_paths_agree_with_scalar(results):
    for name in ("batch_ctp_rating", "frontier_year_grid",
                 "premise3_gap_scan", "keysearch_bit_expansion"):
        assert results[name]["max_rel_err"] <= 1e-9, name
    # The Monte-Carlo draw layouts differ; extremes agree loosely.
    assert results["bound_sensitivity_mc"]["max_rel_err"] <= 0.2
