"""Figure 7: Performance of Foreign and Domestic HPC Systems.

The "spaghetti" overlay of Figures 4 and 6: foreign indigenous curves
against the Western uncontrollable-SMP envelope.  The chapter's key
finding — Western uncontrollable systems eclipse every foreign indigenous
program by the mid-1990s — falls out as an assertion.
"""

import numpy as np

from repro._util import year_range
from repro.controllability.frontier import frontier_series
from repro.machines.foreign import ForeignCountry, max_indigenous_mtops
from repro.reporting.figures import render_log_chart, render_series


def build_figure():
    years = year_range(1988.0, 1997.0, 0.5)
    series = {
        country.value: np.array(
            [max_indigenous_mtops(country, y) for y in years]
        )
        for country in ForeignCountry
    }
    series["US uncontrollable"] = frontier_series(years)
    return years, series


def test_fig07_overlay(benchmark, emit):
    years, series = benchmark(build_figure)
    table = render_series(
        "Figure 7: performance of foreign and domestic HPC systems (Mtops)",
        years, series,
    )
    chart = render_log_chart(
        "Overlay (log scale)", years,
        {k: np.maximum(v, 0.5) for k, v in series.items()},
    )
    emit(f"{table}\n\n{chart}")

    # By mid-1995 the Western uncontrollable envelope exceeds every
    # foreign indigenous curve ("eclipsing most, if not all").
    idx95 = years.index(1995.5)
    western = series["US uncontrollable"][idx95]
    for country in ForeignCountry:
        assert western > series[country.value][idx95]
    # Earlier in the period, foreign indigenous systems (MKP, Galaxy-II)
    # were still ahead of the tiny uncontrollable envelope.
    idx91 = years.index(1991.0)
    assert max(series[c.value][idx91] for c in ForeignCountry) \
        > series["US uncontrollable"][idx91]
