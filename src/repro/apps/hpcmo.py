"""Synthetic HPCMO requirements database (Figures 8-10).

The study reviewed ~700 DoD HPC projects from the High-Performance
Computing Modernization Office databases.  Those records are not public;
this generator produces a population whose *marginals* match what the paper
reports, which is all the downstream analysis consumes:

* most projects run "well below the uncontrollability level; many are lower
  than current export control thresholds" (Figure 8's mass sits under
  1,500 Mtops);
* "more than two-thirds of the applications ... can be carried out using
  computers below the threshold of controllability" (our mixture puts
  >90% below ~4,100 Mtops);
* "of those remaining, about five percent require ... 7,000-8,000 Mtops";
* "a smaller but still significant number ... at least 10,000 Mtops";
* projected 1996 DT&E requirements roughly double current usage
  (Figure 9's right-shift), with a migrating-to-parallel contingent.

The mixture is three lognormal components: a volume workstation-class
population, a mid-range MPP/SMP population, and a small high-end vector
population.  All sampling is vectorized and seeded.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro._util import check_year
from repro.apps.taxonomy import CF, CTA, Parallelizability

__all__ = ["HpcmoProject", "HpcmoDatabase", "MigrationSummary",
           "generate_hpcmo", "migration_summary"]

#: Mixture weights / medians (Mtops) / sigmas (log-space) for current usage.
_MIX_WEIGHTS = np.array([0.70, 0.25, 0.05])
_MIX_MEDIANS = np.array([150.0, 1_200.0, 9_000.0])
_MIX_SIGMAS = np.array([1.10, 0.90, 0.55])

#: S&T CTAs weighted by the paper's emphasis (CFD and CSM are "the most
#: frequently encountered" and "most computationally stressful").
_CTA_WEIGHTS: tuple[tuple[CTA, float], ...] = (
    (CTA.CFD, 0.22), (CTA.CSM, 0.18), (CTA.CEA, 0.12), (CTA.SIP, 0.14),
    (CTA.FMS, 0.10), (CTA.CWO, 0.08), (CTA.CCM, 0.08), (CTA.CEN, 0.05),
    (CTA.EQM, 0.03),
)
_CF_WEIGHTS: tuple[tuple[CF, float], ...] = (
    (CF.TA, 0.35), (CF.RTMS, 0.30), (CF.RTDA, 0.22), (CF.DBA, 0.13),
)
_SERVICES = ("Army", "Navy", "Air Force", "Defense agencies")
_SERVICE_WEIGHTS = np.array([0.27, 0.30, 0.28, 0.15])


@dataclass(frozen=True)
class HpcmoProject:
    """One synthetic project record.

    ``current_mtops`` is the machine the project runs on today (the Figure
    8/9 axis); ``projected_mtops`` its stated 1996 requirement;
    ``min_mtops`` the estimated least-capable sufficient configuration
    (``min <= current`` by construction, mirroring how practitioners
    answered the study's minimum-configuration question).
    """

    project_id: int
    kind: str                      # "S&T" or "DT&E"
    discipline: CTA | CF
    service: str
    current_mtops: float
    projected_mtops: float
    min_mtops: float
    parallelizable: Parallelizability

    def __post_init__(self) -> None:
        if self.kind not in ("S&T", "DT&E"):
            raise ValueError(f"kind must be 'S&T' or 'DT&E', got {self.kind!r}")
        if not (0 < self.min_mtops <= self.current_mtops):
            raise ValueError("need 0 < min_mtops <= current_mtops")
        if self.projected_mtops < self.current_mtops * 0.999:
            raise ValueError("projected requirement cannot shrink (Ch. 2)")


@dataclass(frozen=True)
class HpcmoDatabase:
    """The synthetic database plus its summary accessors."""

    year: float
    projects: tuple[HpcmoProject, ...]

    def of_kind(self, kind: str) -> list[HpcmoProject]:
        return [p for p in self.projects if p.kind == kind]

    def current_mtops(self, kind: str | None = None) -> np.ndarray:
        pool = self.projects if kind is None else self.of_kind(kind)
        return np.array([p.current_mtops for p in pool])

    def projected_mtops(self, kind: str | None = None) -> np.ndarray:
        pool = self.projects if kind is None else self.of_kind(kind)
        return np.array([p.projected_mtops for p in pool])

    def min_mtops(self, kind: str | None = None) -> np.ndarray:
        pool = self.projects if kind is None else self.of_kind(kind)
        return np.array([p.min_mtops for p in pool])

    def histogram(
        self, values: np.ndarray, bin_edges: Sequence[float]
    ) -> np.ndarray:
        """Counts in performance bins (the Figures 8-10 bars)."""
        return np.histogram(values, bins=np.asarray(bin_edges, dtype=float))[0]

    def fraction_below(self, mtops: float, which: str = "min") -> float:
        """Fraction of projects whose requirement sits below ``mtops``."""
        values = {"min": self.min_mtops, "current": self.current_mtops,
                  "projected": self.projected_mtops}[which]()
        return float(np.mean(values < mtops))


@dataclass(frozen=True)
class MigrationSummary:
    """The parallelizing-migration picture of Chapter 4.

    "A large segment of DoD high-performance computing is migrating to
    small computers through the process of code conversion and
    'parallelizing'" — but a hard core cannot follow.
    """

    total_projects: int
    convertible_now: int          # EASY, any requirement level
    convertible_with_cost: int    # LIMITED
    stranded: int                 # NO: stays on big iron
    #: Projects above a reference threshold whose parallelizability lets
    #: them escape the controlled tier entirely.
    escapees_above_threshold: int

    @property
    def migrating_fraction(self) -> float:
        return (self.convertible_now + self.convertible_with_cost) \
            / self.total_projects


def migration_summary(
    db: "HpcmoDatabase",
    threshold_mtops: float = 1_500.0,
) -> MigrationSummary:
    """Summarize the cluster-migration potential of a project population."""
    if threshold_mtops <= 0:
        raise ValueError("threshold_mtops must be positive")
    easy = sum(1 for p in db.projects
               if p.parallelizable is Parallelizability.EASY)
    limited = sum(1 for p in db.projects
                  if p.parallelizable is Parallelizability.LIMITED)
    stranded = sum(1 for p in db.projects
                   if p.parallelizable is Parallelizability.NO)
    escapees = sum(
        1 for p in db.projects
        if p.min_mtops >= threshold_mtops
        and p.parallelizable is Parallelizability.EASY
    )
    return MigrationSummary(
        total_projects=len(db.projects),
        convertible_now=easy,
        convertible_with_cost=limited,
        stranded=stranded,
        escapees_above_threshold=escapees,
    )


def _sample_mixture(rng: np.random.Generator, n: int) -> np.ndarray:
    comp = rng.choice(len(_MIX_WEIGHTS), size=n, p=_MIX_WEIGHTS)
    return np.exp(
        np.log(_MIX_MEDIANS[comp]) + _MIX_SIGMAS[comp] * rng.normal(size=n)
    )


def generate_hpcmo(
    seed: int = 0,
    n_projects: int = 700,
    year: float = 1995.0,
    st_fraction: float = 0.6,
) -> HpcmoDatabase:
    """Generate the synthetic database (deterministic per seed).

    ``st_fraction`` splits the population between S&T and DT&E projects.
    """
    check_year(year, "year")
    if n_projects < 1:
        raise ValueError("n_projects must be >= 1")
    if not 0.0 < st_fraction < 1.0:
        raise ValueError("st_fraction must be in (0, 1)")
    rng = np.random.default_rng(np.random.SeedSequence([seed, n_projects]))

    n_st = int(round(n_projects * st_fraction))
    kinds = np.array(["S&T"] * n_st + ["DT&E"] * (n_projects - n_st))

    current = np.clip(_sample_mixture(rng, n_projects), 0.5, 120_000.0)
    # Minimum <= current: practitioners' answers clustered at a modest
    # fraction of what they run on (today's machine "almost always seems
    # barely functional", so the admitted minimum is rarely tiny).
    min_factor = rng.uniform(0.25, 0.95, size=n_projects)
    minimum = current * min_factor
    # Projected 1996 requirements grow ~2x on median, heavier for DT&E
    # (Figure 9 shows the projected distribution shifted right).
    growth = np.exp(rng.normal(np.log(1.8), 0.45, size=n_projects))
    growth = np.maximum(growth, 1.0)
    growth[kinds == "DT&E"] *= 1.15
    projected = current * growth

    ctas = [c for c, _ in _CTA_WEIGHTS]
    cta_w = np.array([w for _, w in _CTA_WEIGHTS])
    cfs = [c for c, _ in _CF_WEIGHTS]
    cf_w = np.array([w for _, w in _CF_WEIGHTS])
    service_idx = rng.choice(len(_SERVICES), size=n_projects,
                             p=_SERVICE_WEIGHTS / _SERVICE_WEIGHTS.sum())

    # "A large segment of DoD high-performance computing is migrating to
    # small computers through ... parallelizing" — but some problems (e.g.
    # tactical weather) do not parallelize well.
    par_pool = np.array([Parallelizability.EASY, Parallelizability.LIMITED,
                         Parallelizability.NO])
    par_idx = rng.choice(3, size=n_projects, p=[0.45, 0.35, 0.20])

    projects = []
    for i in range(n_projects):
        if kinds[i] == "S&T":
            discipline: CTA | CF = ctas[rng.choice(len(ctas), p=cta_w / cta_w.sum())]
        else:
            discipline = cfs[rng.choice(len(cfs), p=cf_w / cf_w.sum())]
        projects.append(
            HpcmoProject(
                project_id=i + 1,
                kind=str(kinds[i]),
                discipline=discipline,
                service=_SERVICES[service_idx[i]],
                current_mtops=float(current[i]),
                projected_mtops=float(projected[i]),
                min_mtops=float(minimum[i]),
                parallelizable=par_pool[par_idx[i]],
            )
        )
    return HpcmoDatabase(year=year, projects=tuple(projects))
