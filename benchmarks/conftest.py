"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
rendered output is printed (visible with ``pytest -s``) and also written
to ``benchmarks/output/<test>.txt`` so the regenerated artifacts survive
stdout capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture()
def emit(request):
    """Return a callable that prints and persists one rendered artifact."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    target = OUTPUT_DIR / f"{request.node.name}.txt"

    def _emit(text: str) -> None:
        print()
        print(text)
        target.write_text(text + "\n")

    return _emit
