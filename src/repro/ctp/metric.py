"""End-to-end CTP computation and unit conversions.

``ctp`` rates a configuration of computing elements; ``ctp_homogeneous`` is
the common case of ``n`` identical processors.  The conversion helpers encode
the paper's working equivalences between the metrics found in its sources
(Chapter 4, "The Collection of Data About National Security HPC Programs"):

* Mflops -> Mtops: "roughly equivalent" for 64-bit scientific machines, with
  theoretical-operation credit for concurrent non-floating-point hardware.
  Calibrated factor 1.5 at 64 bits (SPARCstation 10 at ~36 peak Mflops maps
  to the paper's 53.3 Mtops; the SIRST deployed requirement of ~6,500
  sustained Mflops maps to the paper's "about 13,000 Mtops" at factor ~2 —
  the spread is real, so the factor is a parameter).
* MIPS -> Mtops: fixed-point instructions count directly as theoretical
  operations, adjusted by word length (IBM 3090-era mainframes, VAX minis).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro._util import check_positive
from repro.ctp.aggregate import (
    Coupling,
    CTPParameters,
    DEFAULT_PARAMETERS,
    aggregate,
    aggregate_homogeneous,
)
from repro.ctp.elements import ComputingElement, word_length_factor
from repro.ctp.rates import theoretical_performance

__all__ = [
    "ctp",
    "ctp_homogeneous",
    "mflops_to_mtops",
    "mips_to_mtops",
    "mtops_to_mflops",
]

#: Calibrated ratio of Mtops to peak Mflops for 64-bit machines.
MFLOPS_FACTOR_64 = 1.5


def ctp(
    elements: Sequence[ComputingElement],
    coupling: Coupling,
    params: CTPParameters = DEFAULT_PARAMETERS,
    interconnect_beta: float | None = None,
) -> float:
    """CTP in Mtops of a configuration of (possibly heterogeneous) elements."""
    tps = [theoretical_performance(e) for e in elements]
    return aggregate(tps, coupling, params, interconnect_beta)


def ctp_homogeneous(
    element: ComputingElement,
    n: int,
    coupling: Coupling,
    params: CTPParameters = DEFAULT_PARAMETERS,
    interconnect_beta: float | None = None,
) -> float:
    """CTP in Mtops of ``n`` identical computing elements."""
    tp = theoretical_performance(element)
    return aggregate_homogeneous(tp, n, coupling, params, interconnect_beta)


def mflops_to_mtops(
    mflops: float,
    word_bits: float = 64.0,
    factor: float = MFLOPS_FACTOR_64,
) -> float:
    """Estimate Mtops from a peak-Mflops rating.

    ``factor`` is the theoretical-operation credit for concurrent
    non-floating-point hardware relative to the floating-point peak; the
    word-length adjustment is applied on top (so a 32-bit DSP scores 2/3 of
    the equivalent 64-bit engine).
    """
    mflops = check_positive(mflops, "mflops")
    factor = check_positive(factor, "factor")
    return mflops * factor * word_length_factor(word_bits)


def mtops_to_mflops(
    mtops: float,
    word_bits: float = 64.0,
    factor: float = MFLOPS_FACTOR_64,
) -> float:
    """Inverse of :func:`mflops_to_mtops`."""
    mtops = check_positive(mtops, "mtops")
    factor = check_positive(factor, "factor")
    return mtops / (factor * word_length_factor(word_bits))


def mips_to_mtops(mips: float, word_bits: float = 32.0) -> float:
    """Estimate Mtops from a fixed-point MIPS rating.

    Each instruction counts as one theoretical operation, adjusted for word
    length.  A 1-MIPS, 32-bit VAX-11/780 rates ~0.67 Mtops, close to the
    paper's quoted 0.8.
    """
    mips = check_positive(mips, "mips")
    return mips * word_length_factor(word_bits)
