"""Versioned on-disk snapshots of the columnar stores.

Every serving process used to rebuild the same read-only state at
startup: the machine columns (one ``assess()`` per catalog machine), the
frontier bisect index, the application drift columns and requirement
matrices, the per-year installed-base suffix tables, and the credit
prefix sums.  Fine for one process; fatal for a pre-fork fleet, where N
workers would run the same rebuild N times, and for serverless-style
scale-out, where cold start is the latency floor.

A snapshot is a directory::

    <dir>/manifest.json        version, content hash, array inventory
    <dir>/arrays/<name>.npy    one raw .npy per array

Raw ``.npy`` files (not a compressed ``.npz``) so the loader can
``np.load(..., mmap_mode="r")``: arrays are faulted in lazily, shared
**page-for-page across forked workers**, and never copied per process.
The loader installs them through each store's ``install_*`` hook
(:func:`repro.machines.columns.install_machine_columns` and friends), so
cold start does **zero** columnar rebuilds — the ``*.builds`` counters
stay untouched, which the ``snapshot_cold_start`` benchmark gates on.

Staleness is structural, not temporal: the manifest records a SHA-256
over everything the arrays were derived from — the commercial catalog,
``THRESHOLD_HISTORY``, the application stalactites and drift constants,
the default controllability weights and CTP parameters, and the format
version.  :func:`load_snapshot` recomputes the live hash and raises
:class:`~repro.obs.errors.SnapshotStaleError` on any mismatch rather
than serving answers derived from a catalog that no longer exists.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.catalog.registry import (
    current_epoch,
    register_invalidation_hook,
)
from repro.obs.errors import SnapshotStaleError, ValidationError
from repro.obs.trace import counter_inc, counters, trace

__all__ = [
    "FORMAT_VERSION",
    "DEFAULT_SNAPSHOT_DIR",
    "DEFAULT_SNAPSHOT_YEARS",
    "BUILD_COUNTERS",
    "SnapshotInfo",
    "live_content_hash",
    "build_snapshot",
    "load_snapshot",
    "active_snapshot",
    "active_manifest_hash",
    "verify_active_snapshot",
    "clear_store_caches",
    "build_counter_totals",
]

#: Bump on any incompatible change to the artifact layout.
#: 2: added ``frontier.population_rows`` (patchable frontier index) and
#: the catalog ``epoch`` to the manifest.
FORMAT_VERSION = 2

#: Where ``repro snapshot`` / ``repro serve --snapshot`` look by default.
DEFAULT_SNAPSHOT_DIR = Path(".repro-snapshot")

#: The canonical year grid snapshotted for the requirement matrix and the
#: installed-base suffix tables: 1986.0 .. 2000.0 quarterly.  Generated
#: as ``lo + k * step`` with exactly-representable steps so the floats
#: (and therefore the memoization keys) are reproducible everywhere.
DEFAULT_SNAPSHOT_YEARS: tuple[float, ...] = tuple(
    1986.0 + 0.25 * k for k in range(57))

#: Largest homogeneous element count whose credit prefix sums are
#: precomputed per coupling (the catalog tops out well below this).
DEFAULT_CREDIT_N = 512

#: Counters that tick when a columnar store is rebuilt in process.  A
#: snapshot-primed startup must leave every one of these untouched.
BUILD_COUNTERS = (
    "columns.machine_builds",
    "columns.application_builds",
    "columns.requirement_builds",
    "frontier.index_builds",
    "market.suffix_builds",
    "credit_cache.misses",
    "credit_cache.regrows",
)


@dataclass(frozen=True)
class SnapshotInfo:
    """One loaded (or just-built) snapshot."""

    path: Path
    manifest: dict
    n_arrays: int

    @property
    def manifest_hash(self) -> str:
        return self.manifest["content_hash"]


# The snapshot this process loaded, if any (reported by /healthz).
_ACTIVE: SnapshotInfo | None = None


def active_snapshot() -> SnapshotInfo | None:
    """The snapshot this process is serving from, or ``None``."""
    return _ACTIVE


def active_manifest_hash() -> str | None:
    """The loaded snapshot's content hash, or ``None`` (fresh build)."""
    return None if _ACTIVE is None else _ACTIVE.manifest_hash


# ---------------------------------------------------------------------------
# Content hashing
# ---------------------------------------------------------------------------


def _content_descriptor() -> str:
    """A canonical text rendering of everything the arrays derive from.

    ``repr`` of the frozen dataclasses is deterministic across processes
    (float repr is exact shortest-round-trip), so equal inputs hash equal
    and any edit to the catalog, thresholds, applications, weights, or
    schedule parameters changes the hash.
    """
    from repro.apps.catalog import APPLICATIONS
    from repro.apps.requirements import (
        DRIFT_FLOOR_FRACTION,
        DRIFT_RATE_PER_YEAR,
    )
    from repro.controllability.frontier import UNCONTROLLABILITY_LAG_YEARS
    from repro.controllability.index import DEFAULT_WEIGHTS
    from repro.ctp.aggregate import DEFAULT_PARAMETERS
    from repro.diffusion.policy import THRESHOLD_HISTORY
    from repro.machines.catalog import COMMERCIAL_SYSTEMS
    from repro.market.installed import LOG_BIN_EDGES

    parts = [
        f"format={FORMAT_VERSION}",
        "machines=" + ";".join(repr(m) for m in COMMERCIAL_SYSTEMS),
        "thresholds=" + ";".join(repr(e) for e in THRESHOLD_HISTORY),
        "applications=" + ";".join(repr(a) for a in APPLICATIONS),
        f"drift=({DRIFT_RATE_PER_YEAR!r},{DRIFT_FLOOR_FRACTION!r})",
        f"weights={DEFAULT_WEIGHTS!r}",
        f"ctp_params={DEFAULT_PARAMETERS!r}",
        f"lag={UNCONTROLLABILITY_LAG_YEARS!r}",
        "bins=" + ",".join(repr(float(e)) for e in LOG_BIN_EDGES),
    ]
    return "\n".join(parts)


def live_content_hash() -> str:
    """SHA-256 of the in-process catalog/threshold/schedule state."""
    return hashlib.sha256(
        _content_descriptor().encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Build
# ---------------------------------------------------------------------------


def build_snapshot(
    path: Path | str = DEFAULT_SNAPSHOT_DIR,
    years: tuple[float, ...] = DEFAULT_SNAPSHOT_YEARS,
    credit_n: int = DEFAULT_CREDIT_N,
) -> SnapshotInfo:
    """Build every columnar store once and serialize it under ``path``.

    Idempotent: an existing snapshot directory is overwritten atomically
    array by array (the manifest is written last, so a crashed build is
    detected as an unreadable snapshot, never a silently partial one).
    """
    from repro.controllability.frontier import (
        UNCONTROLLABILITY_LAG_YEARS,
        _frontier_index,
    )
    from repro.controllability.index import DEFAULT_WEIGHTS
    from repro.ctp import Coupling
    from repro.ctp.batch import credit_sums
    from repro.diffusion.columns import (
        application_columns,
        requirement_matrix,
    )
    from repro.machines.columns import machine_columns
    from repro.market.installed import _suffix_index

    if credit_n < 1:
        raise ValidationError("credit_n must be >= 1",
                              context={"got": credit_n, "valid": ">= 1"})
    years = tuple(float(y) for y in years)
    if not years:
        raise ValidationError("years grid must not be empty",
                              context={"got": 0, "valid": ">= 1 year"})
    path = Path(path)
    arrays_dir = path / "arrays"
    arrays_dir.mkdir(parents=True, exist_ok=True)

    with trace("store.snapshot_build") as span:
        counter_inc("store.snapshot_builds")
        arrays: dict[str, np.ndarray] = {}

        # 1. Machine columns (one assess() per machine, here and never
        #    again for any process that loads the artifact).
        cols = machine_columns()
        for name in ("intro_years", "entry_mtops", "max_config_mtops",
                     "reachable_mtops", "field_upgradable",
                     "units_installed", "controllability_index",
                     "class_codes", "uncontrollable"):
            arrays[f"machine.{name}"] = getattr(cols, name)

        # 2. Frontier bisect index under the default weights and lag.
        #    Leaders serialize as catalog row numbers.
        index = _frontier_index(DEFAULT_WEIGHTS, UNCONTROLLABILITY_LAG_YEARS)
        row_by_key = {m.key: i for i, m in enumerate(cols.machines)}
        arrays["frontier.qualify_years"] = index.qualify_years
        arrays["frontier.running_max"] = index.running_max
        arrays["frontier.leader_rows"] = np.array(
            [row_by_key[m.key] for m in index.leaders], dtype=np.int64)
        arrays["frontier.population_rows"] = np.array(
            [row_by_key[m.key] for m in (index.population or ())],
            dtype=np.int64)

        # 3. Application drift columns + the requirement matrix over the
        #    canonical year grid (bit-exact scalar-pow construction).
        _apps, base, firsts = application_columns()
        arrays["apps.base_mtops"] = base
        arrays["apps.year_first"] = firsts
        arrays["apps.requirements"] = requirement_matrix(years)

        # 4. Installed-base suffix tables per canonical year.  Centers
        #    depend only on the bin edges, so one row serves all years.
        centers0, _ = _suffix_index(years[0])
        suffix_rows = np.stack(
            [_suffix_index(year)[1] for year in years])
        arrays["market.centers"] = centers0
        arrays["market.suffix_rows"] = suffix_rows

        # 5. Credit prefix sums per coupling at the default parameters.
        for coupling in Coupling:
            n = 1 if coupling is Coupling.SINGLE else credit_n
            arrays[f"credit.{coupling.name.lower()}"] = credit_sums(
                n, coupling)

        inventory = {}
        for name, array in arrays.items():
            filename = name.replace(".", "_") + ".npy"
            np.save(arrays_dir / filename, np.ascontiguousarray(array))
            inventory[name] = {
                "file": f"arrays/{filename}",
                "dtype": str(array.dtype),
                "shape": list(array.shape),
            }

        manifest = {
            "format_version": FORMAT_VERSION,
            "content_hash": live_content_hash(),
            "epoch": current_epoch(),
            "years": list(years),
            "credit_n": int(credit_n),
            "couplings": [c.name.lower() for c in Coupling],
            "arrays": inventory,
        }
        manifest_path = path / "manifest.json"
        tmp_path = path / "manifest.json.tmp"
        tmp_path.write_text(json.dumps(manifest, indent=2) + "\n")
        os.replace(tmp_path, manifest_path)
        if span is not None:
            span.tags["arrays"] = len(arrays)
    return SnapshotInfo(path=path, manifest=manifest, n_arrays=len(arrays))


# ---------------------------------------------------------------------------
# Load
# ---------------------------------------------------------------------------


def _read_manifest(path: Path) -> dict:
    manifest_path = path / "manifest.json"
    if not manifest_path.is_file():
        raise ValidationError(
            f"no snapshot manifest at {manifest_path}",
            context={"got": str(path),
                     "valid": "a directory built by `repro snapshot`"},
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except ValueError:
        raise SnapshotStaleError(
            "snapshot manifest is not valid JSON (partial build?)",
            context={"path": str(manifest_path)},
        ) from None
    if not isinstance(manifest, dict) or "content_hash" not in manifest:
        raise SnapshotStaleError(
            "snapshot manifest is missing its content hash",
            context={"path": str(manifest_path)},
        )
    return manifest


def _load_array(path: Path, manifest: dict, name: str,
                mmap: bool) -> np.ndarray:
    entry = manifest["arrays"].get(name)
    if entry is None:
        raise SnapshotStaleError(
            f"snapshot is missing array {name!r}",
            context={"array": name, "path": str(path)},
        )
    file_path = path / entry["file"]
    try:
        array = np.load(file_path, mmap_mode="r" if mmap else None)
    except (OSError, ValueError) as exc:
        raise SnapshotStaleError(
            f"snapshot array {name!r} is unreadable",
            context={"array": name, "path": str(file_path),
                     "cause": str(exc)},
        ) from None
    if list(array.shape) != entry["shape"] \
            or str(array.dtype) != entry["dtype"]:
        raise SnapshotStaleError(
            f"snapshot array {name!r} does not match its manifest entry",
            context={"array": name,
                     "got": f"{array.dtype}{array.shape}",
                     "valid": f"{entry['dtype']}{tuple(entry['shape'])}"},
        )
    if not mmap:
        array.setflags(write=False)
    return array


def load_snapshot(path: Path | str = DEFAULT_SNAPSHOT_DIR,
                  mmap: bool = True) -> SnapshotInfo:
    """Validate and install a snapshot into every columnar store.

    Raises :class:`SnapshotStaleError` when the manifest's content hash
    does not match the live catalog/threshold/schedule state, when the
    format version is unknown, or when any array is missing, unreadable,
    or mis-shaped — never installs a partial or stale snapshot.

    With ``mmap`` (the default), arrays are read-only memmaps: pages
    fault in on first touch and are shared by every process forked after
    the load.
    """
    from repro.controllability.frontier import (
        UNCONTROLLABILITY_LAG_YEARS,
        install_frontier_index,
    )
    from repro.controllability.index import DEFAULT_WEIGHTS
    from repro.ctp import Coupling
    from repro.ctp.batch import install_credit_sums
    from repro.diffusion.columns import (
        install_application_columns,
        install_requirement_matrix,
    )
    from repro.machines.columns import (
        install_machine_columns,
        machine_columns_from_arrays,
    )
    from repro.market.installed import install_suffix_index

    global _ACTIVE
    path = Path(path)
    with trace("store.snapshot_load") as span:
        manifest = _read_manifest(path)
        if manifest.get("format_version") != FORMAT_VERSION:
            raise SnapshotStaleError(
                "snapshot format version is not supported",
                context={"got": manifest.get("format_version"),
                         "valid": FORMAT_VERSION, "path": str(path)},
            )
        live = live_content_hash()
        if manifest["content_hash"] != live:
            raise SnapshotStaleError(
                "snapshot content hash does not match the live catalog — "
                "rebuild with `repro snapshot`",
                context={"got": manifest["content_hash"], "valid": live,
                         "path": str(path),
                         "epoch_delta": (current_epoch()
                                         - int(manifest.get("epoch", 0)))},
            )

        def load(name: str) -> np.ndarray:
            return _load_array(path, manifest, name, mmap)

        machine_arrays = {
            name.split(".", 1)[1]: load(name)
            for name in manifest["arrays"] if name.startswith("machine.")
        }
        install_machine_columns(machine_columns_from_arrays(machine_arrays))

        install_frontier_index(
            DEFAULT_WEIGHTS, UNCONTROLLABILITY_LAG_YEARS,
            qualify_years=load("frontier.qualify_years"),
            running_max=load("frontier.running_max"),
            leader_rows=load("frontier.leader_rows"),
            population_rows=load("frontier.population_rows"),
        )

        years = tuple(float(y) for y in manifest["years"])
        install_application_columns(load("apps.base_mtops"),
                                    load("apps.year_first"))
        install_requirement_matrix(years, load("apps.requirements"))

        centers = load("market.centers")
        suffix_rows = load("market.suffix_rows")
        if len(suffix_rows) != len(years):
            raise SnapshotStaleError(
                "snapshot suffix tables do not cover the manifest years",
                context={"got": len(suffix_rows), "valid": len(years)},
            )
        for year, suffix in zip(years, suffix_rows):
            install_suffix_index(year, centers, suffix)

        for name in manifest.get("couplings", []):
            coupling = Coupling[name.upper()]
            install_credit_sums(load(f"credit.{name}"), coupling)

        counter_inc("store.snapshot_loads")
        if span is not None:
            span.tags["arrays"] = len(manifest["arrays"])
        info = SnapshotInfo(path=path, manifest=manifest,
                            n_arrays=len(manifest["arrays"]))
        _ACTIVE = info
        return info


def verify_active_snapshot() -> None:
    """Re-check the loaded snapshot against the *current* catalog state.

    A worker forked after its parent loaded a snapshot may discover —
    e.g. at startup, before reporting ready — that the in-process
    catalog no longer matches the artifact it is serving from (a
    mutation event landed between load and fork, or the snapshot on
    disk belongs to a different catalog build).  No-op when no snapshot
    is active; raises :class:`SnapshotStaleError` with both hashes and
    the epoch delta otherwise.
    """
    if _ACTIVE is None:
        return
    live = live_content_hash()
    if _ACTIVE.manifest_hash != live:
        raise SnapshotStaleError(
            "active snapshot no longer matches the live catalog — "
            "rebuild with `repro snapshot`",
            context={
                "got": _ACTIVE.manifest_hash,
                "valid": live,
                "path": str(_ACTIVE.path),
                "epoch_delta": (current_epoch()
                                - int(_ACTIVE.manifest.get("epoch", 0))),
            },
        )


# A catalog mutation patches the in-process stores past the loaded
# artifact: the process is no longer serving "from the snapshot", so
# deactivate it (healthz/metrics report a fresh-build identity and the
# fleet skew detector sees agreement again once every worker applies).
register_invalidation_hook(
    "store.snapshot", lambda epoch: _deactivate_snapshot(),
    kinds=("append_machine", "amend_machine", "amend_threshold"))


def _deactivate_snapshot() -> None:
    global _ACTIVE
    _ACTIVE = None


# ---------------------------------------------------------------------------
# Hygiene + introspection
# ---------------------------------------------------------------------------


def clear_store_caches() -> None:
    """Drop every installed/memoized columnar store (tests, benches, and
    ablation hygiene) — the next access rebuilds from scratch."""
    from repro.controllability.frontier import clear_frontier_indexes
    from repro.controllability.index import clear_assessment_caches
    from repro.ctp.batch import clear_credit_cache
    from repro.diffusion.columns import clear_requirement_matrices
    from repro.machines.columns import clear_machine_columns
    from repro.market.installed import clear_installed_index

    global _ACTIVE
    _ACTIVE = None
    clear_machine_columns()
    clear_requirement_matrices()
    clear_frontier_indexes()
    clear_installed_index()
    clear_credit_cache()
    clear_assessment_caches()


def build_counter_totals() -> dict[str, int]:
    """Current values of every store build counter (see
    :data:`BUILD_COUNTERS`); a snapshot-primed startup leaves all of
    them unchanged."""
    stats = counters()
    return {name: int(stats.get(name, 0)) for name in BUILD_COUNTERS}
