"""Figure 9: Performance Distribution of Current (1995) and Projected
(1996) DT&E Applications.

Side-by-side histograms showing the projected requirements shifted right
of current usage.
"""

import numpy as np

from repro.apps.hpcmo import generate_hpcmo
from repro.reporting.tables import render_table

_EDGES = 10.0 ** np.arange(0.0, 5.51, 0.5)


def build_figure():
    db = generate_hpcmo(seed=0, year=1995.0)
    current = db.histogram(db.current_mtops("DT&E"), _EDGES)
    projected = db.histogram(db.projected_mtops("DT&E"), _EDGES)
    return current, projected


def test_fig09_dte_distribution(benchmark, emit):
    current, projected = benchmark(build_figure)
    rows = [
        [f"{_EDGES[i]:,.0f} - {_EDGES[i + 1]:,.0f}", int(current[i]),
         int(projected[i])]
        for i in range(current.size)
    ]
    emit(render_table(
        ["performance band (Mtops)", "current (1995)", "projected (1996)"],
        rows,
        title="Figure 9: DT&E application distribution, current vs projected",
    ))

    centers = np.sqrt(_EDGES[:-1] * _EDGES[1:])
    mean_current = np.average(np.log10(centers), weights=np.maximum(current, 1e-9))
    mean_projected = np.average(np.log10(centers),
                                weights=np.maximum(projected, 1e-9))
    # The projected distribution sits to the right (requirements grow).
    assert mean_projected > mean_current
