"""Figure 12: Trends in Distribution of Top500 Installations.

Synthetic Top500 lists for successive publication years: performance-band
histograms and architecture shares, showing the list's mass marching up
the Mtops axis while vector machines give way to MPPs and SMPs.
"""

import numpy as np

from repro.machines.spec import Architecture
from repro.reporting.tables import render_table
from repro.trends.top500 import generate_top500

_YEARS = (1993.5, 1994.5, 1995.5, 1996.5)
_EDGES = 10.0 ** np.arange(2.0, 6.01, 0.5)


def build_figure():
    lists = {year: generate_top500(year, seed=0) for year in _YEARS}
    histograms = {year: lst.histogram(_EDGES) for year, lst in lists.items()}
    shares = {year: lst.share_by_architecture() for year, lst in lists.items()}
    return histograms, shares


def test_fig12_top500_distribution(benchmark, emit):
    histograms, shares = benchmark(build_figure)
    rows = [
        [f"{_EDGES[i]:,.0f} - {_EDGES[i + 1]:,.0f}"]
        + [int(histograms[y][i]) for y in _YEARS]
        for i in range(_EDGES.size - 1)
    ]
    text = render_table(
        ["band (Mtops)"] + [f"{y:.0f}" for y in _YEARS],
        rows,
        title="Figure 12: Top500 installations by performance band",
    )
    share_rows = [
        [f"{y:.1f}"] + [
            f"{shares[y].get(a, 0.0):.0%}"
            for a in (Architecture.VECTOR, Architecture.MPP, Architecture.SMP)
        ]
        for y in _YEARS
    ]
    text += "\n\n" + render_table(
        ["list year", "vector", "MPP", "SMP"],
        share_rows,
        title="Architecture shares",
    )
    emit(text)

    # The median entry climbs; the vector share declines.
    def median_of(year):
        lst = generate_top500(year, seed=0)
        return np.median(lst.mtops())

    assert median_of(_YEARS[-1]) > median_of(_YEARS[0])
    assert shares[_YEARS[-1]].get(Architecture.VECTOR, 0.0) < shares[
        _YEARS[0]
    ].get(Architecture.VECTOR, 0.0)
