"""Batch CTP APIs vs the scalar pipeline: exact parity and cache hygiene.

The batch layer must be a pure performance change — every rating it
produces has to match the scalar ``ctp``/``aggregate`` path to within
1e-9 relative error on every cataloged machine, every coupling, and
swept aggregation parameters, and the credit prefix-sum cache must never
serve one parameterization's sums to another.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ctp import (
    ComputingElement,
    Coupling,
    CTPParameters,
    aggregate,
    aggregate_homogeneous,
    ctp,
    ctp_homogeneous,
    theoretical_performance,
)
from repro.ctp.batch import (
    aggregate_batch,
    aggregate_homogeneous_batch,
    clear_credit_cache,
    credit_cache_info,
    credit_sums,
    ctp_batch,
    ctp_homogeneous_batch,
    theoretical_performance_batch,
)
from repro.machines.catalog import COMMERCIAL_SYSTEMS

MULTI_COUPLINGS = (Coupling.SHARED, Coupling.DISTRIBUTED, Coupling.CLUSTER)


def _rel_err(a, b) -> float:
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return float(np.max(np.abs(a - b) / np.maximum(np.abs(b), 1e-30)))


def _elements(n: int) -> list[ComputingElement]:
    return [
        ComputingElement(
            name=f"e{i}", clock_mhz=25.0 + 13.0 * i,
            word_bits=32.0 if i % 2 else 64.0,
            fp_ops_per_cycle=float(1 + i % 3),
            int_ops_per_cycle=float(1 + i % 2),
            concurrent_int_fp=bool(i % 4 == 0),
        )
        for i in range(n)
    ]


class TestTheoreticalPerformanceBatch:
    def test_matches_scalar_bitwise(self):
        elements = _elements(17)
        batch = theoretical_performance_batch(elements)
        scalar = np.array([theoretical_performance(e) for e in elements])
        assert np.array_equal(batch, scalar)

    def test_empty(self):
        assert theoretical_performance_batch([]).shape == (0,)


class TestAggregateBatchParity:
    @pytest.mark.parametrize("coupling", MULTI_COUPLINGS)
    def test_homogeneous_rows(self, coupling):
        tps = [50.0, 121.7, 960.0]
        ns = [1, 2, 7, 64, 513]
        rows = [[tp] * n for tp in tps for n in ns]
        batch = aggregate_batch(rows, coupling)
        scalar = [aggregate(row, coupling) for row in rows]
        assert _rel_err(batch, scalar) <= 1e-9

    @pytest.mark.parametrize("coupling", MULTI_COUPLINGS)
    def test_heterogeneous_rows(self, coupling):
        rng = np.random.default_rng(7)
        rows = [
            list(rng.uniform(1.0, 2_000.0, size=rng.integers(1, 40)))
            for _ in range(60)
        ]
        batch = aggregate_batch(rows, coupling)
        scalar = [aggregate(row, coupling) for row in rows]
        assert _rel_err(batch, scalar) <= 1e-9

    def test_single_coupling_rows(self):
        rows = [[128.0], [53.3], [21_125.0]]
        batch = aggregate_batch(rows, Coupling.SINGLE)
        scalar = [aggregate(row, Coupling.SINGLE) for row in rows]
        assert _rel_err(batch, scalar) <= 1e-9

    @pytest.mark.parametrize("params", [
        CTPParameters(shared_credit=0.6),
        CTPParameters(distributed_base=0.9, distributed_gamma=0.25),
        CTPParameters(distributed_gamma=0.0),
        CTPParameters(cluster_beta=0.8),
    ])
    @pytest.mark.parametrize("coupling", MULTI_COUPLINGS)
    def test_swept_parameters(self, params, coupling):
        rows = [[100.0] * n for n in (2, 5, 33)] + [[7.0, 400.0, 62.5]]
        batch = aggregate_batch(rows, coupling, params)
        scalar = [aggregate(row, coupling, params) for row in rows]
        assert _rel_err(batch, scalar) <= 1e-9

    @pytest.mark.parametrize("beta", [0.1, 0.35, 1.0])
    def test_cluster_beta_override(self, beta):
        rows = [[250.0] * 12, [10.0, 20.0, 30.0]]
        batch = aggregate_batch(rows, Coupling.CLUSTER,
                                interconnect_beta=beta)
        scalar = [aggregate(row, Coupling.CLUSTER, interconnect_beta=beta)
                  for row in rows]
        assert _rel_err(batch, scalar) <= 1e-9

    def test_rejects_empty_row(self):
        with pytest.raises(ValueError):
            aggregate_batch([[100.0], []], Coupling.SHARED)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            aggregate_batch([[100.0, -1.0]], Coupling.SHARED)


class TestCtpBatchParity:
    @pytest.mark.parametrize("coupling", MULTI_COUPLINGS)
    def test_heterogeneous_configurations(self, coupling):
        pool = _elements(9)
        configurations = [
            pool[:1], pool[:3], pool[2:9], [pool[4]] * 16, pool[::2],
        ]
        batch = ctp_batch(configurations, coupling)
        scalar = [ctp(cfg, coupling) for cfg in configurations]
        assert _rel_err(batch, scalar) <= 1e-9

    @pytest.mark.parametrize("coupling", MULTI_COUPLINGS)
    def test_homogeneous_matches_scalar(self, coupling):
        elements = _elements(6)
        ns = np.array([1, 2, 8, 100, 3, 17])
        batch = ctp_homogeneous_batch(elements, ns, coupling)
        scalar = [ctp_homogeneous(e, int(n), coupling)
                  for e, n in zip(elements, ns)]
        assert _rel_err(batch, scalar) <= 1e-9

    def test_homogeneous_against_aggregate_homogeneous(self):
        tps = np.array([10.0, 420.0])
        ns = np.array([5, 12])
        batch = aggregate_homogeneous_batch(tps, ns, Coupling.DISTRIBUTED)
        scalar = [aggregate_homogeneous(float(tp), int(n),
                                        Coupling.DISTRIBUTED)
                  for tp, n in zip(tps, ns)]
        assert _rel_err(batch, scalar) <= 1e-9

    def test_every_cataloged_machine(self):
        """Batch rating of each catalog machine's element configuration
        matches its scalar computed CTP to <= 1e-9 relative error."""
        rateable = [m for m in COMMERCIAL_SYSTEMS if m.element is not None]
        assert rateable, "catalog has no element-backed machines to check"
        couplings = {m.architecture.coupling for m in rateable}
        for coupling in couplings:
            group = [m for m in rateable
                     if m.architecture.coupling is coupling]
            batch = ctp_batch(
                [[m.element] * m.n_processors for m in group], coupling
            )
            scalar = [m.computed_ctp_mtops() for m in group]
            assert _rel_err(batch, scalar) <= 1e-9


class TestCreditCache:
    def setup_method(self):
        clear_credit_cache()

    def test_cache_reused_for_same_key(self):
        credit_sums(50, Coupling.SHARED)
        entries_before = credit_cache_info()["entries"]
        credit_sums(30, Coupling.SHARED)  # smaller n, same key: no new entry
        assert credit_cache_info()["entries"] == entries_before

    def test_distinct_params_get_distinct_entries(self):
        """Regression: cached schedules must be invalidated (re-keyed)
        when the aggregation parameters differ."""
        default = credit_sums(10, Coupling.DISTRIBUTED)
        swept = credit_sums(
            10, Coupling.DISTRIBUTED,
            params=CTPParameters(distributed_gamma=0.0),
        )
        assert credit_cache_info()["entries"] == 2
        assert not np.allclose(default[:10], swept[:10])
        # And each agrees with its own scalar schedule.
        for params, sums in ((CTPParameters(), default),
                             (CTPParameters(distributed_gamma=0.0), swept)):
            scalar = [aggregate_homogeneous(1.0, n, Coupling.DISTRIBUTED,
                                            params)
                      for n in range(1, 11)]
            assert _rel_err(sums[:10], scalar) <= 1e-9

    def test_cluster_beta_is_part_of_the_key(self):
        a = credit_sums(8, Coupling.CLUSTER)
        b = credit_sums(8, Coupling.CLUSTER, interconnect_beta=0.9)
        assert credit_cache_info()["entries"] == 2
        assert not np.allclose(a[:8], b[:8])

    def test_cached_sums_are_read_only(self):
        sums = credit_sums(5, Coupling.SHARED)
        with pytest.raises(ValueError):
            sums[0] = 99.0

    def test_clear(self):
        credit_sums(5, Coupling.SHARED)
        clear_credit_cache()
        assert credit_cache_info()["entries"] == 0


class TestCreditCacheBound:
    """The cache is LRU-bounded and its introspection stays accurate."""

    def setup_method(self):
        clear_credit_cache()

    def teardown_method(self):
        clear_credit_cache()

    def test_rows_never_exceed_bound(self):
        from repro.ctp.batch import CREDIT_CACHE_MAX_ROWS

        overflow = CREDIT_CACHE_MAX_ROWS + 20
        for i in range(overflow):
            beta = 0.05 + 0.9 * i / overflow  # distinct key per draw
            credit_sums(4, Coupling.CLUSTER, interconnect_beta=beta)
        info = credit_cache_info()
        assert info["rows"] <= CREDIT_CACHE_MAX_ROWS
        assert info["entries"] == info["rows"]
        assert info["evictions"] >= 20
        assert info["misses"] == overflow

    def test_lru_order_keeps_hot_rows(self):
        from repro.ctp.batch import CREDIT_CACHE_MAX_ROWS

        credit_sums(4, Coupling.SHARED)  # the row to keep hot
        for i in range(CREDIT_CACHE_MAX_ROWS):
            beta = 0.05 + 0.9 * i / CREDIT_CACHE_MAX_ROWS
            credit_sums(4, Coupling.CLUSTER, interconnect_beta=beta)
            credit_sums(4, Coupling.SHARED)  # touch: moves to MRU end
        info = credit_cache_info()
        assert info["evictions"] >= 1
        hits_before = info["hits"]
        credit_sums(4, Coupling.SHARED)  # survived every eviction round
        assert credit_cache_info()["hits"] == hits_before + 1

    def test_info_accurate_after_regrow(self):
        credit_sums(10, Coupling.SHARED)
        first = credit_cache_info()
        assert first["rows"] == 1
        assert first["misses"] == 1
        credit_sums(400, Coupling.SHARED)  # forces a geometric regrow
        info = credit_cache_info()
        assert info["rows"] == 1, "a regrown row is still one row"
        assert info["regrows"] == 1
        assert info["total_length"] >= 400
        credit_sums(50, Coupling.SHARED)
        assert credit_cache_info()["hits"] == 1

    def test_info_accurate_after_clear(self):
        credit_sums(10, Coupling.SHARED)
        credit_sums(10, Coupling.SHARED)
        clear_credit_cache()
        info = credit_cache_info()
        assert info["entries"] == 0
        assert info["rows"] == 0
        assert info["total_length"] == 0
        assert info["hits"] == 0
        assert info["misses"] == 0
        assert info["regrows"] == 0
        assert info["evictions"] == 0
