"""Tests for the brute-force keysearch driver."""

import pytest

from repro.crypto.des import des_encrypt_block
from repro.crypto.keysearch import (
    WORD_OPS_PER_KEY,
    brute_force,
    keyspace_partition,
    ops_per_key_breakdown,
)

_PLAIN = 0x1122334455667788


class TestBruteForce:
    def test_finds_planted_key(self):
        key = 0x2B31
        cipher = des_encrypt_block(_PLAIN, key)
        result = brute_force(_PLAIN, cipher, search_bits=14)
        assert result.succeeded
        assert des_encrypt_block(_PLAIN, result.found_key) == cipher
        assert result.keys_tried <= 2**14

    def test_key_outside_space_not_found(self):
        # Vary only low 8 bits but plant the key at bit 20.
        key = 1 << 20
        cipher = des_encrypt_block(_PLAIN, key)
        result = brute_force(_PLAIN, cipher, search_bits=8)
        assert not result.succeeded
        assert result.keys_tried == 256

    def test_base_key_offsets_search(self):
        base = 0xAB00000000000000
        key = base | 0x5E
        cipher = des_encrypt_block(_PLAIN, key)
        result = brute_force(_PLAIN, cipher, base_key=base, search_bits=8)
        assert result.succeeded
        assert result.found_key == key

    def test_early_exit(self):
        # Key 0 is in the first batch: only one batch should run.
        cipher = des_encrypt_block(_PLAIN, 0)
        result = brute_force(_PLAIN, cipher, search_bits=12, batch_size=512)
        assert result.batches == 1

    def test_batch_size_independence(self):
        key = 0x0313
        cipher = des_encrypt_block(_PLAIN, key)
        a = brute_force(_PLAIN, cipher, search_bits=11, batch_size=64)
        b = brute_force(_PLAIN, cipher, search_bits=11, batch_size=2048)
        assert a.found_key == b.found_key

    def test_validation(self):
        with pytest.raises(ValueError):
            brute_force(_PLAIN, 0, search_bits=0)
        with pytest.raises(ValueError):
            brute_force(_PLAIN, 0, search_bits=8, batch_size=0)


class TestPartition:
    def test_covers_exactly(self):
        ranges = keyspace_partition(10, 7)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 1024
        for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
            assert a1 == b0  # contiguous, no overlap, no gap

    def test_balanced(self):
        ranges = keyspace_partition(10, 7)
        sizes = [stop - start for start, stop in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_more_processors_than_keys(self):
        ranges = keyspace_partition(2, 16)
        assert len(ranges) == 4  # empty ranges dropped
        assert sum(stop - start for start, stop in ranges) == 4

    def test_single_processor(self):
        assert keyspace_partition(8, 1) == [(0, 256)]

    def test_validation(self):
        with pytest.raises(ValueError):
            keyspace_partition(0, 4)
        with pytest.raises(ValueError):
            keyspace_partition(8, 0)


class TestOpsAccounting:
    def test_breakdown_consistent(self):
        b = ops_per_key_breakdown()
        per_round = sum(v for k, v in b.items() if k.startswith("round/"))
        assert per_round == b["per_round_total"]
        assert b["total"] == (16 * b["per_round_total"] + b["key_schedule"]
                              + b["ip_fp"] + b["compare"])

    def test_constant_matches_breakdown(self):
        assert WORD_OPS_PER_KEY == ops_per_key_breakdown()["total"]

    def test_order_of_magnitude(self):
        # A word-level DES trial is hundreds, not tens or tens of
        # thousands, of theoretical operations.
        assert 300.0 <= WORD_OPS_PER_KEY <= 2_000.0

    def test_cost_model_uses_it(self):
        from repro.simulate.applications import keysearch_required_mtops

        expected = (2.0**39 * WORD_OPS_PER_KEY) / (24 * 3600.0) / 1e6
        assert keysearch_required_mtops(40, 24.0) == pytest.approx(expected)
