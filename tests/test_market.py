"""Tests for market segments, price-performance, and the installed base."""

import numpy as np
import pytest

from repro.market.installed import (
    LOG_BIN_EDGES,
    installed_distribution,
    installed_units_above,
    market_value_between,
)
from repro.market.pricing import (
    affordable_mtops,
    dollars_per_mtops,
    price_performance_trend,
)
from repro.market.segments import SEGMENTS, find_segment, segment_revenue_busd


class TestSegments:
    def test_paper_1994_anchors(self):
        assert find_segment("personal computers").revenue_busd(1994.0) == 75.0
        assert find_segment("workstations").revenue_busd(1994.0) == 30.0
        assert find_segment("parallel systems (SMP + MPP)").revenue_busd(1994.0) == 2.5

    def test_parallel_fastest_growing(self):
        parallel = find_segment("parallel systems (SMP + MPP)")
        assert parallel.growth_per_year >= 1.4
        assert all(
            parallel.growth_per_year >= s.growth_per_year
            for s in SEGMENTS if s.name not in ("parallel systems (SMP + MPP)",
                                                "commercial MPP")
        )

    def test_commercial_parallel_5b_by_1998(self):
        # "expected to grow to $5.2 billion by 1998" — the SMP+MPP segment
        # more than doubles by then.
        assert segment_revenue_busd("parallel systems (SMP + MPP)", 1998.0) > 5.0

    def test_vector_declines(self):
        v = find_segment("vector supercomputers")
        assert v.revenue_busd(1998.0) < v.revenue_busd(1994.0)

    def test_unknown_segment(self):
        with pytest.raises(KeyError):
            find_segment("quantum")


class TestPricing:
    def test_price_per_mtops_falls(self):
        t = price_performance_trend()
        assert t.growth_per_year < 1.0

    def test_dollars_per_mtops_declines(self):
        assert dollars_per_mtops(1996.0) < dollars_per_mtops(1992.0)

    def test_affordable_mtops_grows(self):
        assert affordable_mtops(1e6, 1996.0) > affordable_mtops(1e6, 1992.0)

    def test_million_dollars_buys_frontier_class_by_mid90s(self):
        # Note 47's $1.2M maximum-configuration SMPs rate in the thousands
        # of Mtops.
        assert affordable_mtops(1.2e6, 1995.5) > 2_000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            affordable_mtops(0.0, 1995.0)


class TestInstalledBase:
    def test_distribution_shape(self):
        edges, counts = installed_distribution(1995.5)
        assert edges.shape[0] == counts.shape[0] + 1
        assert counts.sum() > 0

    def test_mass_concentrated_low(self):
        # The humps sit at PC/workstation levels, far below the frontier.
        edges, counts = installed_distribution(1995.5)
        centers = np.sqrt(edges[:-1] * edges[1:])
        below = counts[centers < 1_000.0].sum()
        assert below / counts.sum() > 0.95

    def test_units_above_monotone_in_threshold(self):
        assert installed_units_above(1_000.0, 1995.5) >= installed_units_above(
            10_000.0, 1995.5
        )

    def test_units_build_over_time(self):
        assert installed_units_above(1_000.0, 1996.5) >= installed_units_above(
            1_000.0, 1994.0
        )

    def test_retirement(self):
        # The PC-XT (1983) is fully retired by the mid-1990s.
        edges, counts_95 = installed_distribution(1995.5)
        _, counts_89 = installed_distribution(1986.0)
        centers = np.sqrt(edges[:-1] * edges[1:])
        xt_band = (centers > 0.1) & (centers < 0.4)
        assert counts_89[xt_band].sum() > counts_95[xt_band].sum()

    def test_market_value_positive_in_smp_band(self):
        value = market_value_between(1_000.0, 20_000.0, 1995.5)
        assert value > 1e8  # hundreds of millions of dollars of SMPs

    def test_market_value_validation(self):
        with pytest.raises(ValueError):
            market_value_between(10.0, 10.0, 1995.5)

    def test_custom_bins(self):
        edges = np.array([1.0, 100.0, 10_000.0, 1e6])
        out_edges, counts = installed_distribution(1995.5, bin_edges=edges)
        assert counts.shape == (3,)
        assert np.array_equal(out_edges, edges)

    def test_default_bins_cover_catalog(self):
        assert LOG_BIN_EDGES[0] <= 0.1
        assert LOG_BIN_EDGES[-1] >= 1e6
