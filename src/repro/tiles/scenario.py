"""Tiled lazy evaluation of the (scenario x threshold x year) tensor.

Scenario tiles are **scenario-major slabs**: one world per tile, over a
bucket's (threshold, year) lattice, built by the same column-overlay
path :func:`repro.scenarios.grid.evaluate_scenario_grid` runs
(:func:`~repro.scenarios.grid._world_slab` over the tile's small axes)
— never by the tensor builder itself, so ``scenarios.grid_builds``
stays at zero under a pure point-query mix.

Every scenario answer carries the world's in-force threshold, which an
``amend_threshold`` event rewrites for historical-timeline worlds, so
the ``tiles.scenario`` plane is stale under **every** event kind (the
same breadth as the ``"scenarios"`` tensor-cache hook).  That breadth
is also what keeps the cached one-world ``ScenarioGrid`` tiles epoch-
consistent: a tile in the store was necessarily built at the current
epoch, so its ``_check_epoch`` read discipline never trips on a cached
read.

Reads hold the catalog read guard exactly like the tensor builder does
— and like it, accept ``_caller_holds_guard`` from dispatch paths (the
serve MicroBatcher) that already hold it, because the guard is not
reentrant.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

import numpy as np

from repro._util import check_positive, check_year
from repro.catalog.registry import (
    EVENT_KINDS,
    current_epoch,
    read_guard,
)
from repro.diffusion.columns import application_columns
from repro.diffusion.policy import PolicyEffectiveness
from repro.diffusion.policy_grid import _validated_axes
from repro.obs.errors import ValidationError
from repro.obs.trace import counter_inc, trace
from repro.scenarios.grid import ScenarioGrid, _world_slab
from repro.scenarios.spec import Scenario
from repro.tiles.geometry import (
    MAX_AXIS_POINTS,
    TILE_SHAPE,
    block_slices,
    canonical_thresholds,
    canonical_years,
    threshold_bucket,
    year_bucket,
)
from repro.tiles.store import TilePlane, _covering_tile

__all__ = [
    "ScenarioPoint",
    "ScenarioTile",
    "scenario_point",
    "scenario_cells",
    "tiled_scenario_grid",
]

#: One-world scenario tiles: stale under every event kind, like the
#: tensor cache (answers embed the in-force threshold series).
SCENARIO_PLANE = TilePlane("scenario", kinds=EVENT_KINDS)


@dataclass(frozen=True)
class ScenarioTile:
    """One world's lazily built sub-tensor plus axis indexes."""

    grid: ScenarioGrid
    row: Mapping[float, int] = field(repr=False)
    col: Mapping[float, int] = field(repr=False)

    @property
    def axes(self) -> tuple[tuple[float, ...], tuple[float, ...]]:
        return (tuple(self.row), tuple(self.col))


@dataclass(frozen=True)
class ScenarioPoint:
    """One (scenario, threshold, year) answer off the tile plane."""

    scenario: Scenario
    cell: PolicyEffectiveness
    #: The threshold the world's own timeline imposes at this year
    #: (0.0 before the world's first era).
    threshold_in_force_mtops: float
    #: Whether that in-force threshold exists and clears the frontier.
    in_force_credible: bool


def _build_scenario_tile(
    scenario: Scenario,
    t_axis: Sequence[float],
    y_axis: Sequence[float],
) -> ScenarioTile:
    """One-world tile through the overlay engine's own slab worker."""
    t = np.array(t_axis, dtype=float)
    y = np.array(y_axis, dtype=float)
    thresholds_key = tuple(float(v) for v in t_axis)
    years_key = tuple(float(v) for v in y_axis)
    counter_inc("tiles.scenario.cells", t.size * y.size)
    (frontier, requirements, protected, illusory, burden,
     uncontrollable) = _world_slab((scenario,), thresholds_key, years_key)
    in_force = np.stack(
        [np.asarray(scenario.threshold_in_force_series(y))])
    credible = t[None, :, None] >= frontier[:, None, :]
    in_force_credible = (in_force >= frontier) & (in_force > 0.0)
    for arr in (t, y, frontier, requirements, protected, illusory,
                burden, uncontrollable, credible, in_force,
                in_force_credible):
        arr.setflags(write=False)
    grid = ScenarioGrid(
        scenarios=(scenario,),
        thresholds=t,
        years=y,
        frontier_mtops=frontier,
        requirements=requirements,
        protected_counts=protected,
        illusory_counts=illusory,
        burden_units=burden,
        uncontrollable_counts=uncontrollable,
        credible=credible,
        in_force_mtops=in_force,
        in_force_credible=in_force_credible,
        epoch=current_epoch(),
    )
    return ScenarioTile(
        grid=grid,
        row={float(v): k for k, v in enumerate(t_axis)},
        col={float(v): k for k, v in enumerate(y_axis)},
    )


def _tile_covers(tile: ScenarioTile,
                 need_axes: tuple[tuple[float, ...], ...]) -> bool:
    need_t, need_y = need_axes
    return (all(v in tile.row for v in need_t)
            and all(v in tile.col for v in need_y))


def scenario_cells(
    points: Sequence[tuple[Scenario, float, float]],
    _caller_holds_guard: bool = False,
) -> list[ScenarioPoint]:
    """Answers for a batch of (scenario, threshold, year) points.

    Points are grouped by (world, geometry bucket): each group costs at
    most one one-world tile build, so a micro-batch of concurrent
    point queries landing in the same tile triggers a single build.
    """
    pts: list[tuple[Scenario, float, float]] = []
    for scenario, threshold, year in points:
        if not isinstance(scenario, Scenario):
            raise ValidationError(
                "scenario must be a Scenario instance",
                context={"got": type(scenario).__name__,
                         "valid": "Scenario"},
            )
        t = float(threshold)
        y = float(year)
        check_positive(t, "threshold_mtops")
        check_year(y, "year")
        pts.append((scenario, t, y))
    counter_inc("tiles.scenario.point_queries", len(pts))
    groups: dict[tuple[Scenario, int, int], list[int]] = {}
    for idx, (scenario, t, y) in enumerate(pts):
        bucket = (scenario, threshold_bucket(t), year_bucket(y))
        groups.setdefault(bucket, []).append(idx)
    out: list[ScenarioPoint | None] = [None] * len(pts)
    guard = nullcontext() if _caller_holds_guard else read_guard()
    with guard, trace("tiles.scenario.points") as span:
        if span is not None:
            span.tags["points"] = len(pts)
            span.tags["buckets"] = len(groups)
        for (scenario, bi, bj), members in groups.items():
            need_t = tuple(sorted({pts[k][1] for k in members}))
            need_y = tuple(sorted({pts[k][2] for k in members}))
            tile = _covering_tile(
                SCENARIO_PLANE,
                ("b", scenario, bi, bj),
                (need_t, need_y),
                (canonical_thresholds(bi), canonical_years(bj)),
                _tile_covers,
                lambda t_axis, y_axis, s=scenario:
                    _build_scenario_tile(s, t_axis, y_axis),
                MAX_AXIS_POINTS,
            )
            for k in members:
                _s, t, y = pts[k]
                i, j = tile.row[t], tile.col[y]
                out[k] = ScenarioPoint(
                    scenario=scenario,
                    cell=tile.grid.result_at(0, i, j),
                    threshold_in_force_mtops=float(
                        tile.grid.in_force_mtops[0, j]),
                    in_force_credible=bool(
                        tile.grid.in_force_credible[0, j]),
                )
    return out  # type: ignore[return-value]


def scenario_point(
    scenario: Scenario,
    threshold_mtops: float,
    year: float,
    _caller_holds_guard: bool = False,
) -> ScenarioPoint:
    """One (scenario, threshold, year) answer through the tile plane,
    bit-exact against the matching ``evaluate_scenario_grid`` cell."""
    return scenario_cells(
        [(scenario, threshold_mtops, year)],
        _caller_holds_guard=_caller_holds_guard,
    )[0]


def tiled_scenario_grid(
    scenarios: Sequence[Scenario],
    thresholds: Sequence[float] | np.ndarray,
    years: Sequence[float] | np.ndarray,
    tile_shape: tuple[int, int] = TILE_SHAPE,
    _caller_holds_guard: bool = False,
) -> ScenarioGrid:
    """Assemble the full tensor from one-world block tiles —
    tobytes-identical to ``evaluate_scenario_grid`` over the same axes.

    Worlds are slabs (one tile never mixes worlds); the in-force series
    and the credibility tensors are computed by the monolithic
    builder's own expressions over the assembled columns.
    """
    scenarios = tuple(scenarios)
    if not scenarios:
        raise ValidationError(
            "scenarios must be non-empty",
            context={"got": 0, "valid": ">= 1 scenario"},
        )
    for s in scenarios:
        if not isinstance(s, Scenario):
            raise ValidationError(
                "scenarios must be Scenario instances",
                context={"got": type(s).__name__, "valid": "Scenario"},
            )
    if len(set(scenarios)) != len(scenarios):
        raise ValidationError(
            "scenarios must be distinct",
            context={"got": [s.name for s in scenarios],
                     "valid": "no duplicate worlds"},
        )
    t, y = _validated_axes(thresholds, years)
    rows, cols = int(tile_shape[0]), int(tile_shape[1])
    if rows < 1 or cols < 1:
        raise ValidationError(
            "tile_shape entries must be >= 1",
            context={"got": tuple(tile_shape), "valid": ">= (1, 1)"},
        )
    counter_inc("tiles.scenario.assemblies")
    apps, _base, _firsts = application_columns()
    n_w, n_t, n_y, n_a = len(scenarios), t.size, y.size, len(apps)
    t_blocks = block_slices(n_t, rows)
    y_blocks = block_slices(n_y, cols)
    frontier = np.empty((n_w, n_y))
    requirements = np.empty((n_w, n_a, n_y))
    protected = np.empty((n_w, n_t, n_y), dtype=np.int64)
    illusory = np.empty((n_w, n_t, n_y), dtype=np.int64)
    burden = np.empty((n_w, n_t, n_y))
    uncontrollable = np.empty((n_w, n_t, n_y), dtype=np.int64)
    in_force = np.empty((n_w, n_y))
    guard = nullcontext() if _caller_holds_guard else read_guard()
    with guard, trace("tiles.scenario.assemble") as span:
        if span is not None:
            span.tags["worlds"] = n_w
            span.tags["tiles"] = n_w * len(t_blocks) * len(y_blocks)
        epoch = current_epoch()
        for w, scenario in enumerate(scenarios):
            for ta, tb in t_blocks:
                t_key = tuple(float(v) for v in t[ta:tb])
                for ya, yb in y_blocks:
                    y_key = tuple(float(v) for v in y[ya:yb])
                    tile = SCENARIO_PLANE.get_or_build(
                        ("x", scenario, t_key, y_key),
                        lambda s=scenario, tk=t_key, yk=y_key:
                            _build_scenario_tile(s, tk, yk),
                    )
                    if ta == 0:
                        frontier[w, ya:yb] = tile.grid.frontier_mtops[0]
                        requirements[w, :, ya:yb] = (
                            tile.grid.requirements[0])
                    protected[w, ta:tb, ya:yb] = (
                        tile.grid.protected_counts[0])
                    illusory[w, ta:tb, ya:yb] = (
                        tile.grid.illusory_counts[0])
                    burden[w, ta:tb, ya:yb] = tile.grid.burden_units[0]
                    uncontrollable[w, ta:tb, ya:yb] = (
                        tile.grid.uncontrollable_counts[0])
            in_force[w] = np.asarray(scenario.threshold_in_force_series(y))
        credible = t[None, :, None] >= frontier[:, None, :]
        in_force_credible = (in_force >= frontier) & (in_force > 0.0)
        for arr in (t, y, frontier, requirements, protected, illusory,
                    burden, uncontrollable, credible, in_force,
                    in_force_credible):
            arr.setflags(write=False)
        return ScenarioGrid(
            scenarios=scenarios,
            thresholds=t,
            years=y,
            frontier_mtops=frontier,
            requirements=requirements,
            protected_counts=protected,
            illusory_counts=illusory,
            burden_units=burden,
            uncontrollable_counts=uncontrollable,
            credible=credible,
            in_force_mtops=in_force,
            in_force_credible=in_force_credible,
            epoch=epoch,
        )
