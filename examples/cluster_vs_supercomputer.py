#!/usr/bin/env python
"""Can clustered workstations replace a controlled supercomputer?

Chapter 3's answer: only for coarse-grained work.  This example drives the
parallel-architecture simulator over the workload suite, printing:

* the Table 5 spectrum with measured efficiencies;
* the maximum competitive cluster size per workload and interconnect
  (Mattson's 8-16-node Ethernet ceiling);
* the Berkeley NOW "GATOR" comparison (note 50);
* the applications the cluster route simply cannot touch (memory-bound
  and schedule-bound cases).

Run:  python examples/cluster_vs_supercomputer.py
"""

from repro.simulate import (
    ATM_155,
    ETHERNET_10,
    FDDI,
    JobMix,
    WORKLOAD_SUITE,
    acoustic_campaign_days,
    compare_architectures,
    cost_per_job_rate,
    gator_study,
    max_competitive_cluster_size,
    spectrum_table,
    throughput,
)
from repro.simulate.architectures import cluster_machine, vector_machine
from repro.reporting.tables import render_table


def main() -> None:
    print(render_table(
        ["architecture", "example system", "eff. (coarse)", "eff. (fine)"],
        [[r.architecture.value, r.example, round(r.coarse_efficiency, 2),
          round(r.fine_efficiency, 2)] for r in spectrum_table()],
        title="Table 5: the architecture spectrum, with measured efficiency",
    ))

    print()
    rows = []
    for w in WORKLOAD_SUITE:
        rows.append([
            w.name,
            w.pattern.value,
            max_competitive_cluster_size(w.name, ETHERNET_10),
            max_competitive_cluster_size(w.name, FDDI),
            max_competitive_cluster_size(w.name, ATM_155, dedicated=True),
        ])
    print(render_table(
        ["workload", "communication pattern", "Ethernet", "FDDI",
         "ATM (dedicated)"],
        rows,
        title="Largest competitive cluster (nodes at >= 50% efficiency)",
    ))

    print()
    results = gator_study()
    print(render_table(
        ["machine", "time (s)", "efficiency"],
        [[name, round(r.time_s), round(r.efficiency, 2)]
         for name, r in results.items()],
        title="The NOW GATOR study (note 50): the cluster wins only with "
              "ATM + low-overhead messaging",
    ))

    print()
    comp = compare_architectures("turbulent-flow CSM")
    print("Turbulent-flow CSM (the submarine-quieting code):")
    for r in comp.results:
        status = (f"{r.time_s:,.0f} s" if r.feasible
                  else f"INFEASIBLE ({r.infeasible_reason})")
        print(f"  {r.machine.name:28s} {status}")

    print("\n=== Throughput is a different question (note 52) ===\n")
    mix = JobMix("overnight CFD cases", job_mops=1.0e6, job_memory_mb=64.0)
    farm = throughput(mix, cluster_machine(16))
    cray = throughput(mix, vector_machine(16))
    print(render_table(
        ["machine", "jobs/day", "price", "$ per job/day"],
        [
            ["16-workstation Ethernet farm", round(farm.jobs_per_day),
             "$500K", round(cost_per_job_rate(farm, 500_000.0))],
            ["16-processor vector machine", round(cray.jobs_per_day),
             "$30M", round(cost_per_job_rate(cray, 30_000_000.0))],
        ],
        title="Independent-job throughput: granularity is irrelevant, "
              "economics decide",
    ))

    print("\nSubmarine acoustic-signature campaign (2,000 runs):")
    for mtops, label in [(21_125.0, "Cray C916 (controlled)"),
                         (4_100.0, "mid-1995 uncontrollable frontier"),
                         (1_500.0, "in-force threshold level")]:
        days = acoustic_campaign_days(mtops)
        print(f"  {label:36s} {days / 365.0:6.1f} years of compute")
    print("  -> 'little chance that a country of national security concern "
          "could replicate this program' below the frontier.")


if __name__ == "__main__":
    main()
