"""The export-control regime: tiers, threshold history, effectiveness.

Chapter 1's history gives the threshold timeline (100 Mflops informal ->
160 Mflops proposed 1988 -> 195 Mtops 1991 -> 1,500 Mtops 1994) and note 15
gives the five safeguard tiers.  ``evaluate_policy`` scores a candidate
threshold the way Chapter 5 does: what does it actually protect (stalactites
above the frontier and above the threshold), and what burden does it impose
(licensable units that are uncontrollable anyway)?
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro._util import check_positive, check_year
from repro.obs.errors import ThresholdInfeasibleError
from repro.apps.catalog import APPLICATIONS
from repro.apps.requirements import ApplicationRequirement
from repro.controllability.frontier import lower_bound_uncontrollable
from repro.machines import catalog as _machine_catalog
from repro.machines.spec import MachineSpec
from repro.market.installed import installed_units_above

__all__ = [
    "SafeguardTier",
    "TIER_BY_DESTINATION",
    "ThresholdEra",
    "THRESHOLD_HISTORY",
    "threshold_at",
    "amend_threshold_era",
    "restore_baseline_threshold_history",
    "ExportControlPolicy",
    "LicenseDecision",
    "PolicyEffectiveness",
    "evaluate_policy",
]


class SafeguardTier(enum.Enum):
    """The five safeguard levels of 57 FR 20963 (paper, note 15)."""

    SUPPLIER = "supplier state (no controls)"
    MAJOR_ALLY = "major ally (minimal requirements)"
    SAFEGUARDS_PLAN = "safeguards plan required"
    GOVERNMENT_CERTIFICATION = "importing-government certification"
    RESTRICTED = "all safeguards; generally denied"


#: Representative destinations per tier (note 15's examples).
TIER_BY_DESTINATION: dict[str, SafeguardTier] = {
    "USA": SafeguardTier.SUPPLIER,
    "Japan": SafeguardTier.SUPPLIER,
    "UK": SafeguardTier.MAJOR_ALLY,
    "France": SafeguardTier.MAJOR_ALLY,
    "Germany": SafeguardTier.MAJOR_ALLY,
    "South Korea": SafeguardTier.SAFEGUARDS_PLAN,
    "Sweden": SafeguardTier.SAFEGUARDS_PLAN,
    "India": SafeguardTier.GOVERNMENT_CERTIFICATION,
    "PRC": SafeguardTier.GOVERNMENT_CERTIFICATION,
    "Russia": SafeguardTier.GOVERNMENT_CERTIFICATION,
    "Iran": SafeguardTier.RESTRICTED,
}


@dataclass(frozen=True)
class ThresholdEra:
    """One historical control-threshold regime."""

    start_year: float
    threshold_mtops: float
    label: str


#: Chapter 1's threshold history.  Pre-1991 thresholds were stated in
#: Mflops; they are carried here at their approximate Mtops equivalents.
THRESHOLD_HISTORY: tuple[ThresholdEra, ...] = (
    ThresholdEra(1984.5, 100.0, "bilateral accord, ~100 Mflops informal"),
    ThresholdEra(1988.9, 160.0, "proposed definition, 160 Mflops (Cray-1 peak)"),
    ThresholdEra(1991.5, 195.0, "renegotiated accord, 195 Mtops"),
    ThresholdEra(1994.1, 1_500.0, "current definition, 1,500 Mtops"),
)


#: Era start years / thresholds as read-only bisect columns.  The era in
#: force at ``year`` is the last start at or before it — one
#: ``searchsorted`` instead of a linear scan of every era per call.
_ERA_STARTS: np.ndarray = np.array(
    [era.start_year for era in THRESHOLD_HISTORY])
_ERA_THRESHOLDS: np.ndarray = np.array(
    [era.threshold_mtops for era in THRESHOLD_HISTORY])
_ERA_STARTS.setflags(write=False)
_ERA_THRESHOLDS.setflags(write=False)

#: The import-time history, kept for ``restore_baseline_threshold_history``.
_BASELINE_THRESHOLD_HISTORY: tuple[ThresholdEra, ...] = THRESHOLD_HISTORY


def _install_threshold_history(history: tuple[ThresholdEra, ...]) -> None:
    """Swap in a new era tuple and rebuild the bisect columns (four
    elements — the 'patch' is a rebuild by construction).  Re-exports on
    ``repro.diffusion`` are refreshed; epoch bumps and downstream cache
    invalidation are orchestrated by ``repro.catalog.events``."""
    global THRESHOLD_HISTORY, _ERA_STARTS, _ERA_THRESHOLDS
    import sys

    THRESHOLD_HISTORY = history
    _ERA_STARTS = np.array([era.start_year for era in history])
    _ERA_THRESHOLDS = np.array([era.threshold_mtops for era in history])
    _ERA_STARTS.setflags(write=False)
    _ERA_THRESHOLDS.setflags(write=False)
    package = sys.modules.get("repro.diffusion")
    if package is not None and hasattr(package, "THRESHOLD_HISTORY"):
        package.THRESHOLD_HISTORY = THRESHOLD_HISTORY


def amend_threshold_era(
    start_year: float,
    threshold_mtops: float,
    label: str | None = None,
) -> ThresholdEra:
    """Replace the era starting exactly at ``start_year``; returns the new
    era.  Unknown start years raise rather than silently inserting — era
    *insertion* is a policy-history rewrite, not an amendment."""
    from repro.obs.errors import ValidationError

    check_positive(threshold_mtops, "threshold_mtops")
    for i, era in enumerate(THRESHOLD_HISTORY):
        if era.start_year == start_year:
            amended = ThresholdEra(
                start_year=start_year,
                threshold_mtops=float(threshold_mtops),
                label=era.label if label is None else label,
            )
            _install_threshold_history(
                THRESHOLD_HISTORY[:i] + (amended,) + THRESHOLD_HISTORY[i + 1:]
            )
            return amended
    raise ValidationError(
        f"no threshold era starts at {start_year}",
        context={"got": start_year,
                 "valid": [era.start_year for era in THRESHOLD_HISTORY]},
    )


def restore_baseline_threshold_history() -> None:
    """Reinstate the import-time era tuple (``reset_catalog`` support)."""
    _install_threshold_history(_BASELINE_THRESHOLD_HISTORY)


def threshold_at(year: float) -> float:
    """The control threshold in force at ``year``.

    One bisect against the era-start column; dates before the first era
    raise the taxonomy's :class:`ThresholdInfeasibleError` (a
    ``ValueError``) rather than falling through.
    """
    check_year(year, "year")
    i = int(np.searchsorted(_ERA_STARTS, year, side="right")) - 1
    if i < 0:
        raise ThresholdInfeasibleError(
            f"no supercomputer threshold defined before "
            f"{THRESHOLD_HISTORY[0].start_year}",
            context={"got": year,
                     "valid": f">= {THRESHOLD_HISTORY[0].start_year}"},
        )
    return float(_ERA_THRESHOLDS[i])


@dataclass(frozen=True)
class ExportControlPolicy:
    """A candidate control regime: one threshold, the standard tiers."""

    threshold_mtops: float

    def __post_init__(self) -> None:
        check_positive(self.threshold_mtops, "threshold_mtops")

    def tier_for(self, destination: str) -> SafeguardTier:
        """Safeguard tier of a destination (unlisted -> certification)."""
        return TIER_BY_DESTINATION.get(
            destination, SafeguardTier.GOVERNMENT_CERTIFICATION
        )

    def license_decision(
        self, machine: MachineSpec, destination: str
    ) -> "LicenseDecision":
        """Decide one export-license application.

        The rated configuration is the family *maximum* when the machine
        is field-upgradable (the Chapter 3 loophole treated as the rule).
        """
        rating = (
            machine.max_configuration().ctp_mtops
            if machine.field_upgradable
            else machine.ctp_mtops
        )
        tier = self.tier_for(destination)
        covered = rating >= self.threshold_mtops and tier is not SafeguardTier.SUPPLIER
        approved = covered and tier in (
            SafeguardTier.MAJOR_ALLY, SafeguardTier.SAFEGUARDS_PLAN,
            SafeguardTier.GOVERNMENT_CERTIFICATION,
        ) or not covered
        if covered and tier is SafeguardTier.RESTRICTED:
            approved = False
        return LicenseDecision(
            machine=machine, destination=destination, rating_mtops=rating,
            requires_license=covered, tier=tier, approved=approved,
            safeguards_required=covered and tier not in
            (SafeguardTier.SUPPLIER, SafeguardTier.MAJOR_ALLY),
        )


@dataclass(frozen=True)
class LicenseDecision:
    """Outcome of one license application."""

    machine: MachineSpec
    destination: str
    rating_mtops: float
    requires_license: bool
    tier: SafeguardTier
    approved: bool
    safeguards_required: bool


@dataclass(frozen=True)
class PolicyEffectiveness:
    """Chapter 5-style scorecard for a candidate threshold at a date."""

    year: float
    threshold_mtops: float
    frontier_mtops: float
    #: Applications whose (drifted) minimum exceeds both threshold and
    #: frontier — what the policy actually protects.
    protected_applications: tuple[ApplicationRequirement, ...]
    #: Applications above the threshold but below the frontier — nominally
    #: covered, actually uncontrollable: pure credibility cost.
    illusory_applications: tuple[ApplicationRequirement, ...]
    #: Installed units above the threshold but below the frontier —
    #: licensing burden with no security benefit.
    burden_units: float
    #: Catalog systems above the threshold whose controllability class is
    #: uncontrollable (the enforcement gap).
    uncontrollable_covered_systems: tuple[MachineSpec, ...]

    @property
    def credible(self) -> bool:
        """A threshold below the frontier 'will try to control the
        uncontrollable' — the paper's credibility test."""
        return self.threshold_mtops >= self.frontier_mtops


def evaluate_policy(threshold_mtops: float, year: float) -> PolicyEffectiveness:
    """Score a candidate threshold at a date."""
    check_positive(threshold_mtops, "threshold_mtops")
    check_year(year, "year")
    frontier = lower_bound_uncontrollable(year).mtops
    protected, illusory = [], []
    for app in APPLICATIONS:
        requirement = app.min_at(year)
        if requirement < threshold_mtops:
            continue
        if requirement >= frontier:
            protected.append(app)
        else:
            illusory.append(app)
    burden = 0.0
    if threshold_mtops < frontier:
        burden = installed_units_above(threshold_mtops, year) - installed_units_above(
            frontier, year
        )
    from repro.controllability.index import Classification, assess

    uncontrollable_covered = tuple(
        m for m in _machine_catalog.COMMERCIAL_SYSTEMS
        if m.year <= year
        and m.max_configuration().ctp_mtops >= threshold_mtops
        and assess(m).classification is Classification.UNCONTROLLABLE
    )
    return PolicyEffectiveness(
        year=year,
        threshold_mtops=threshold_mtops,
        frontier_mtops=frontier,
        protected_applications=tuple(protected),
        illusory_applications=tuple(illusory),
        burden_units=max(burden, 0.0),
        uncontrollable_covered_systems=uncontrollable_covered,
    )
