"""Ablation: controllability factor weights.

Monte-Carlo over Dirichlet-perturbed factor weightings: does the headline
lower bound depend on the specific 0.20/0.25/0.20/0.15/0.20 split, and
which Table 4 verdicts are actually weight-sensitive?
"""

from repro.core.sensitivity import (
    bound_sensitivity,
    catalog_uncertainty_sensitivity,
    classification_stability,
)
from repro.reporting.tables import render_table


def build_study():
    bounds = bound_sensitivity(1995.5, n_samples=300, seed=0)
    stability = classification_stability(n_samples=300, seed=0)
    ratings = catalog_uncertainty_sensitivity(1995.5, n_samples=300, seed=0)
    return bounds, stability, ratings


def test_ablation_controllability_weights(benchmark, emit):
    bounds, stability, ratings = benchmark(build_study)
    text = (
        f"Lower bound at 1995.5 over 300 weight draws:\n"
        f"  median {bounds.median:,.0f} Mtops; 90% interval "
        f"[{bounds.quantile(0.05):,.0f}, {bounds.quantile(0.95):,.0f}]\n"
        f"  fraction inside the paper's 4,000-5,000 band: "
        f"{bounds.fraction_in_band(4_000.0, 5_000.0):.0%}\n\n"
    )
    text += render_table(
        ["machine", "default verdict", "agreement across draws"],
        [[r.machine_key, r.default_classification.value,
          f"{r.agreement:.0%}" + ("  <- borderline" if r.is_borderline else "")]
         for r in stability],
        title="Table 4 verdict stability",
    )
    text += (
        f"\n\nCatalog-rating uncertainty (0.1-decade lognormal jitter on "
        f"every rating):\n"
        f"  median {ratings.median:,.0f} Mtops; 90% interval "
        f"[{ratings.quantile(0.05):,.0f}, {ratings.quantile(0.95):,.0f}]\n"
        f"  the finding is weight-robust and rating-limited: the band's "
        f"precision\n  is bounded by how well 1995 ratings are known, not "
        f"by the factor model."
    )
    emit(text)

    # Rating uncertainty keeps the median in the paper band and the mass
    # within the 3,000-7,000 envelope.
    assert 3_500.0 <= ratings.median <= 5_500.0
    assert ratings.fraction_in_band(3_000.0, 7_000.0) >= 0.85

    # The headline band is weight-robust; the one genuinely borderline
    # system is the SP2 (which the paper itself flags as a straddler).
    assert bounds.fraction_in_band(4_000.0, 5_000.0) >= 0.9
    borderline = {r.machine_key for r in stability if r.is_borderline}
    assert borderline <= {"IBM SP2 (16)", "DEC AlphaServer 8400 (12)",
                          "Cray CS6400 (64)"}
    assert "IBM SP2 (16)" in borderline
