"""Tests for the applications taxonomy, requirements, and catalog."""

import pytest

from repro.apps.catalog import (
    APPLICATIONS,
    applications_by_mission,
    find_application,
    min_requirements_mtops,
)
from repro.apps.requirements import (
    ApplicationRequirement,
    DRIFT_FLOOR_FRACTION,
    drifted_min_mtops,
)
from repro.apps.taxonomy import (
    ACW_FUNCTIONAL_AREAS,
    CTA,
    CF,
    MILOPS_FUNCTIONAL_AREAS,
    MissionArea,
    Parallelizability,
    TimingClass,
)


class TestTaxonomy:
    def test_table6_has_nine_ctas_plus_cryptology(self):
        assert len(CTA) == 10  # nine CTAs + cryptology as the 14th area

    def test_table7_has_four_cfs(self):
        assert len(CF) == 4

    def test_acw_has_four_functional_areas(self):
        # Table 8's four ACW mission areas.
        assert len(ACW_FUNCTIONAL_AREAS) == 4
        for area in ACW_FUNCTIONAL_AREAS:
            assert area.mission is MissionArea.ACW
            assert len(area.functions) >= 4

    def test_milops_areas(self):
        assert len(MILOPS_FUNCTIONAL_AREAS) >= 3
        for area in MILOPS_FUNCTIONAL_AREAS:
            assert area.mission is MissionArea.MILITARY_OPERATIONS

    def test_functions_have_ctas(self):
        for area in ACW_FUNCTIONAL_AREAS + MILOPS_FUNCTIONAL_AREAS:
            for fn in area.functions:
                assert fn.ctas

    def test_cfd_csm_most_frequent_in_acw(self):
        # "CFD ... is one of the most frequently encountered families of
        # applications in weapons design".
        ctas = [c for area in ACW_FUNCTIONAL_AREAS
                for fn in area.functions for c in fn.ctas]
        assert ctas.count(CTA.CFD) + ctas.count(CTA.CSM) >= 8


class TestRequirementRecord:
    def _app(self, **kw):
        defaults = dict(
            name="t", mission=MissionArea.ACW, functional_area="x",
            ctas=(CTA.CFD,), min_mtops=1_000.0, year_first=1994.0,
        )
        defaults.update(kw)
        return ApplicationRequirement(**defaults)

    def test_basic(self):
        app = self._app()
        assert app.timing is TimingClass.OPERATIONAL
        assert app.parallelizable is Parallelizability.LIMITED

    def test_rejects_actual_below_min(self):
        with pytest.raises(ValueError, match="below"):
            self._app(actual_mtops=500.0)

    def test_actual_equal_min_allowed(self):
        assert self._app(actual_mtops=1_000.0).actual_mtops == 1_000.0

    def test_rejects_empty_ctas(self):
        with pytest.raises(ValueError):
            self._app(ctas=())

    def test_rejects_nonpositive_min(self):
        with pytest.raises(ValueError):
            self._app(min_mtops=0.0)


class TestDrift:
    def _app(self):
        return ApplicationRequirement(
            name="t", mission=MissionArea.ACW, functional_area="x",
            ctas=(CTA.CFD,), min_mtops=1_000.0, year_first=1990.0,
        )

    def test_no_drift_before_first_performance(self):
        assert drifted_min_mtops(self._app(), 1985.0) == 1_000.0

    def test_monotone_non_increasing(self):
        app = self._app()
        values = [drifted_min_mtops(app, y) for y in (1990.0, 1992.0, 1995.0, 2005.0)]
        assert values == sorted(values, reverse=True)

    def test_rate_applies(self):
        app = self._app()
        assert drifted_min_mtops(app, 1991.0, rate=0.1) == pytest.approx(900.0)

    def test_floor_binds(self):
        app = self._app()
        assert drifted_min_mtops(app, 2040.0) == pytest.approx(
            1_000.0 * DRIFT_FLOOR_FRACTION
        )

    def test_zero_rate_constant(self):
        app = self._app()
        assert drifted_min_mtops(app, 2000.0, rate=0.0) == 1_000.0

    def test_rejects_zero_floor(self):
        with pytest.raises(ValueError, match="floor"):
            drifted_min_mtops(self._app(), 1995.0, floor=0.0)

    def test_min_at_method_matches(self):
        app = self._app()
        assert app.min_at(1995.0) == drifted_min_mtops(app, 1995.0)


class TestApplicationCatalog:
    def test_size(self):
        assert len(APPLICATIONS) >= 30

    def test_unique_names(self):
        names = [a.name for a in APPLICATIONS]
        assert len(set(names)) == len(names)

    def test_all_missions_covered(self):
        for mission in MissionArea:
            assert applications_by_mission(mission), mission

    def test_find_application(self):
        assert find_application("F-22 design").actual_mtops == 958.0

    def test_find_unknown(self):
        with pytest.raises(KeyError):
            find_application("F-23 design")

    # --- quoted paper figures carried exactly ---------------------------
    @pytest.mark.parametrize("name,min_mtops", [
        ("F-117A design", 0.8),
        ("B-2 / Advanced Technology Bomber design", 189.0),
        ("JAST candidate aircraft design", 3_485.0),
        ("Shallow-water turbulent-flow noise modeling", 21_125.0),
        ("Shallow-water bottom-contour acoustic modeling", 8_000.0),
        ("ATR template development", 24_000.0),
        ("Acoustic sensor R&D and ocean modeling", 20_000.0),
        ("Tactical weather prediction (45 km)", 10_000.0),
        ("SIRST development (ASCM defense algorithms)", 7_400.0),
        ("F-22 avionics suite", 9_000.0),
        ("Robust nuclear weapons simulation", 1_400.0),
        ("Routine 10-day / 5-km forecasting", 100_000.0),
    ])
    def test_quoted_minimums(self, name, min_mtops):
        app = find_application(name)
        assert app.min_mtops == min_mtops
        assert app.quoted

    def test_f117_actual_is_ibm_3090(self):
        app = find_application("F-117A design")
        assert app.actual_system == "IBM 3090/250"
        assert app.actual_mtops == 189.0

    def test_actual_systems_exist_in_catalog(self):
        from repro.machines.catalog import find_machine

        for app in APPLICATIONS:
            if app.actual_system is not None:
                machine = find_machine(app.actual_system)  # must not raise
                assert machine.ctp_mtops > 0

    def test_memory_bound_flagged(self):
        assert find_application(
            "Shallow-water turbulent-flow noise modeling").memory_bound
        assert not find_application("F-117A design").memory_bound

    def test_crypto_parallelizable(self):
        # Key judgment: "cryptologic applications can be readily adapted
        # for parallel processing".
        for app in applications_by_mission(MissionArea.CRYPTOLOGY):
            assert app.parallelizable is Parallelizability.EASY

    def test_weather_not_parallelizable(self):
        # "Some problems, such as tactical weather prediction, do not
        # parallelize well."
        assert find_application(
            "Tactical weather prediction (45 km)"
        ).parallelizable is Parallelizability.NO

    def test_min_requirements_sorted(self):
        mins = min_requirements_mtops()
        assert mins == sorted(mins)
        assert len(mins) == len(APPLICATIONS)

    def test_min_requirements_drifted(self):
        raw = min_requirements_mtops()
        drifted = min_requirements_mtops(2000.0)
        assert sum(drifted) < sum(raw)
