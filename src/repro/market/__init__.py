"""Economic substrate: market segments, price-performance, installed base.

Chapter 2's third threshold-selection perspective weighs "the economic gain
to U.S. industry from setting a threshold above this level ... against the
cost to national security".  That needs three things: segment sizes and
growth (``segments``), the price of performance over time (``pricing``),
and the distribution of installed systems over CTP — the "humps" of
Figure 3 (``installed``).
"""

from repro.market.segments import (
    MarketSegment,
    SEGMENTS,
    find_segment,
    segment_revenue_busd,
)
from repro.market.pricing import (
    price_performance_trend,
    dollars_per_mtops,
    affordable_mtops,
)
from repro.market.installed import (
    installed_distribution,
    installed_units_above,
    market_value_between,
    LOG_BIN_EDGES,
)

__all__ = [
    "MarketSegment",
    "SEGMENTS",
    "find_segment",
    "segment_revenue_busd",
    "price_performance_trend",
    "dollars_per_mtops",
    "affordable_mtops",
    "installed_distribution",
    "installed_units_above",
    "market_value_between",
    "LOG_BIN_EDGES",
]
