"""Foreign capability in selected applications (Table 16).

For each selected application and country of concern, the assessment asks:

1. **Computing** — can the country obtain sufficient computing for the
   application's (drifted) minimum requirement, either indigenously or by
   acquiring an uncontrollable Western system?
2. **Other gates** — the paper repeatedly notes that computing is necessary
   but not sufficient: composite materials and machine tools gate stealth
   airframes and quiet submarines, nuclear test data gates advanced weapon
   design, classified codes gate acoustic processing.

An application is *enabled* only when the computing is available and no
other gate binds.  This operationalizes Chapter 4's threat discussions and
the executive summary's conjecture that most applications are already
possible at uncontrollable levels "at least from the standpoint of the
necessary computing".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import check_year
from repro.apps.catalog import APPLICATIONS, find_application
from repro.apps.requirements import ApplicationRequirement
from repro.controllability.frontier import lower_bound_uncontrollable
from repro.machines.foreign import ForeignCountry, max_indigenous_mtops

__all__ = [
    "CapabilityAssessment",
    "OTHER_GATES",
    "assess_foreign_capability",
    "foreign_capability_table",
    "TABLE16_APPLICATIONS",
]

#: Non-computational gates by application name (Chapter 4's threat text).
OTHER_GATES: dict[str, tuple[str, ...]] = {
    "Second-generation weapons design (with test data)": ("nuclear test data",),
    "Stockpile confidence simulation": ("nuclear test data",),
    "F-22 design": ("composite materials", "propulsion"),
    "JAST candidate aircraft design": ("composite materials", "propulsion"),
    "Stealth cruise missile design": ("composite materials", "guidance"),
    "Submarine acoustic-signature CSM": ("advanced materials",
                                         "numerically controlled machine tools"),
    "Shallow-water turbulent-flow noise modeling": ("advanced materials",
                                                    "numerically controlled machine tools"),
    "Acoustic sensor R&D and ocean modeling": ("classified U.S. processing codes",),
    "Shallow-water bottom-contour acoustic modeling": ("ocean survey data",),
}

#: The applications Table 16 assesses (a spread across mission areas).
TABLE16_APPLICATIONS: tuple[str, ...] = (
    "First-generation nuclear weapon design",
    "Second-generation weapons design (with test data)",
    "Brute-force keysearch (24-hour break)",
    "F-117A design",
    "F-22 design",
    "JAST candidate aircraft design",
    "Submarine acoustic-signature CSM",
    "Shallow-water bottom-contour acoustic modeling",
    "ATR template development",
    "Integrated battle management / C4I",
    "Tactical weather prediction (45 km)",
    "SIRST development (ASCM defense algorithms)",
)


@dataclass(frozen=True)
class CapabilityAssessment:
    """One (application, country, year) cell of Table 16."""

    application: ApplicationRequirement
    country: ForeignCountry
    year: float
    required_mtops: float
    indigenous_mtops: float
    uncontrollable_mtops: float
    other_gates: tuple[str, ...]

    @property
    def computing_available(self) -> bool:
        return self.best_available_mtops >= self.required_mtops

    @property
    def best_available_mtops(self) -> float:
        return max(self.indigenous_mtops, self.uncontrollable_mtops)

    @property
    def computing_source(self) -> str | None:
        """Where sufficient computing would come from, if anywhere."""
        if not self.computing_available:
            return None
        if self.indigenous_mtops >= self.required_mtops:
            return "indigenous"
        return "uncontrollable Western"

    @property
    def enabled(self) -> bool:
        """True when computing is available and no other gate binds."""
        return self.computing_available and not self.other_gates


def assess_foreign_capability(
    application_name: str,
    country: ForeignCountry,
    year: float = 1995.5,
) -> CapabilityAssessment:
    """Assess one Table 16 cell."""
    check_year(year, "year")
    app = find_application(application_name)
    return CapabilityAssessment(
        application=app,
        country=country,
        year=year,
        required_mtops=app.min_at(year),
        indigenous_mtops=max_indigenous_mtops(country, year),
        uncontrollable_mtops=lower_bound_uncontrollable(year).mtops,
        other_gates=OTHER_GATES.get(application_name, ()),
    )


def foreign_capability_table(
    year: float = 1995.5,
    applications: tuple[str, ...] = TABLE16_APPLICATIONS,
) -> list[CapabilityAssessment]:
    """The full Table 16 grid: every selected application x country."""
    known = {a.name for a in APPLICATIONS}
    unknown = [n for n in applications if n not in known]
    if unknown:
        raise KeyError(f"unknown applications: {unknown}")
    return [
        assess_foreign_capability(name, country, year)
        for name in applications
        for country in ForeignCountry
    ]
