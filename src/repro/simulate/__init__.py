"""Parallel-architecture performance simulator (the hardware substitute).

The paper's cluster-versus-integrated-system claims (Table 5; Chapter 3
notes 50-55) rest on measurements taken on real 1990s machines.  Those
machines are long gone, so this package provides an analytic machine model
in the LogP/BSP tradition: workloads described by operation counts,
parallel fraction, and communication pattern; machines described by node
rate, memory, and interconnect (bandwidth, latency, shared-medium
contention).  The model is deliberately simple — its job is to reproduce
the paper's *qualitative* findings:

* clusters excel on embarrassingly parallel and replicated problems;
* "reasonable speedups were often observed for clusters with up to 8-12
  nodes, but few exhibited significant speedups for clusters of greater
  size" (medium-grain work on LAN interconnects);
* fine-grained applications (shallow-water/weather halo exchange, sparse
  solvers) are not competitive on clusters versus integrated machines;
* a tightly coupled machine is never worse than a loosely coupled one of
  equal aggregate rating (the Table 5 ordering), so thresholds set by SMP
  performance can safely be applied down-spectrum but not vice versa.
"""

from repro.simulate.interconnect import (
    Interconnect,
    ETHERNET_10,
    FDDI,
    ATM_155,
    HIPPI,
    SMP_BUS,
    PARAGON_MESH,
    T3D_TORUS,
    CM5_FAT_TREE,
    INTERCONNECTS,
)
from repro.simulate.workloads import (
    CommPattern,
    Workload,
    WORKLOAD_SUITE,
    find_workload,
)
from repro.simulate.architectures import (
    MachineModel,
    smp_machine,
    mpp_machine,
    cluster_machine,
    hierarchical_machine,
    vector_machine,
)
from repro.simulate.execution import (
    ExecutionResult,
    simulate_execution,
    speedup_curve,
    efficiency_curve,
)
from repro.simulate.sweep import (
    InfeasibleReason,
    SweepResult,
    sweep,
    validate_node_counts,
    default_machine_catalog,
)
from repro.simulate.cluster_study import (
    ArchitectureComparison,
    compare_architectures,
    max_competitive_cluster_size,
    gator_study,
    spectrum_table,
)
from repro.simulate.embedded import (
    Platform,
    DeployabilityAssessment,
    assess_deployability,
    embedded_mtops_per_watt,
    swap_limited_mtops,
    year_deployable,
)
from repro.simulate.throughput import (
    JobMix,
    ThroughputResult,
    throughput,
    cost_per_job_rate,
)
from repro.simulate.applications import (
    weather_required_mtops,
    keysearch_required_mtops,
    keysearch_time_days,
    acoustic_campaign_days,
    aero_design_turnaround_hours,
)

__all__ = [
    "Interconnect",
    "ETHERNET_10",
    "FDDI",
    "ATM_155",
    "HIPPI",
    "SMP_BUS",
    "PARAGON_MESH",
    "T3D_TORUS",
    "CM5_FAT_TREE",
    "INTERCONNECTS",
    "CommPattern",
    "Workload",
    "WORKLOAD_SUITE",
    "find_workload",
    "MachineModel",
    "smp_machine",
    "mpp_machine",
    "cluster_machine",
    "hierarchical_machine",
    "vector_machine",
    "ExecutionResult",
    "simulate_execution",
    "speedup_curve",
    "efficiency_curve",
    "InfeasibleReason",
    "SweepResult",
    "sweep",
    "validate_node_counts",
    "default_machine_catalog",
    "ArchitectureComparison",
    "compare_architectures",
    "max_competitive_cluster_size",
    "gator_study",
    "spectrum_table",
    "Platform",
    "DeployabilityAssessment",
    "assess_deployability",
    "embedded_mtops_per_watt",
    "swap_limited_mtops",
    "year_deployable",
    "JobMix",
    "ThroughputResult",
    "throughput",
    "cost_per_job_rate",
    "weather_required_mtops",
    "keysearch_required_mtops",
    "keysearch_time_days",
    "acoustic_campaign_days",
    "aero_design_turnaround_hours",
]
