"""Vectorized design-space sweep over the execution-time model.

The paper's cluster-versus-integrated-system analysis (Table 5; Chapter 3
notes 50-55) is, computationally, a *sweep*: the BSP-flavored execution
model evaluated over machines x workloads x node counts.  The scalar
:func:`~repro.simulate.execution.simulate_execution` answers one point at
a time; :func:`sweep` evaluates the whole tensor in whole-array numpy —
memory-feasibility masks, serial/compute terms, and the shared-medium /
switched / hierarchical communication branches all computed as
``(machines, workloads, nodes)`` arrays.

Every elementwise operation is written in the *same order* as the scalar
model, so the sweep is **bit-exact** against ``simulate_execution`` on
every point — the parity suite (``tests/test_sweep.py``) and the
``cluster_sweep_grid`` benchmark both pin ``max_rel_err == 0.0``.

Grid points whose node count is not a multiple of a machine's hypernode
size cannot be instantiated at all (``MachineModel.with_nodes`` would
raise); the sweep marks them infeasible with their own reason code
instead of raising, so a hypernode machine can share a node grid with
flat machines.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.obs.errors import ValidationError
from repro.obs.trace import counter_inc, trace
from repro.simulate.architectures import (
    MachineModel,
    cluster_machine,
    hierarchical_machine,
    mpp_machine,
    smp_machine,
    vector_machine,
)
from repro.simulate.interconnect import ATM_155, ETHERNET_10, FDDI, SMP_BUS
from repro.simulate.workloads import CommPattern, Workload

__all__ = [
    "InfeasibleReason",
    "SweepResult",
    "sweep",
    "validate_node_counts",
    "default_machine_catalog",
]


class InfeasibleReason(enum.IntEnum):
    """Why a grid point cannot run (0 = it can)."""

    NONE = 0
    #: The closely-coupled memory floor exceeds the (pool or hypernode)
    #: memory — the paper's turbulent-flow example.
    MIN_MEMORY = 1
    #: The decomposed working set exceeds per-node memory.
    NODE_MEMORY = 2
    #: The node count is not a multiple of the machine's hypernode size,
    #: so the configuration cannot be built at all.
    NODE_GRID = 3


def validate_node_counts(node_counts: Sequence[int] | np.ndarray) -> np.ndarray:
    """Validate and canonicalize a node-count grid to an int64 array.

    Raises :class:`~repro.obs.errors.ValidationError` (one-line
    diagnostic) for empty grids and non-positive or non-integer entries —
    the seed code silently coerced via ``int(n)``.
    """
    arr = np.asarray(node_counts)
    if arr.ndim != 1 or arr.size == 0:
        raise ValidationError(
            "node_counts must be a non-empty 1-D sequence",
            context={"got_shape": list(arr.shape)},
        )
    if arr.dtype.kind not in "iuf" or (
        arr.dtype.kind == "f" and not np.all(np.isfinite(arr))
    ):
        raise ValidationError(
            "node_counts must be finite integers",
            context={"got_dtype": str(arr.dtype)},
        )
    as_int = arr.astype(np.int64)
    if arr.dtype.kind == "f" and not np.array_equal(as_int, arr):
        bad = arr[as_int != arr][0]
        raise ValidationError(
            f"node_counts must be whole numbers (got {bad})",
            context={"got": float(bad), "valid": "integers >= 1"},
        )
    if np.any(as_int < 1):
        bad = int(as_int[as_int < 1][0])
        raise ValidationError(
            f"node counts must be >= 1 (got {bad})",
            context={"got": bad, "valid": ">= 1"},
        )
    return as_int


def default_machine_catalog() -> tuple[MachineModel, ...]:
    """The architecture-spectrum machine set swept by the benchmark and
    the ``repro sweep`` CLI.

    Node counts on the base machines are placeholders — the sweep
    re-instantiates every machine at each grid point.
    """
    return (
        vector_machine(16),
        smp_machine(16),
        mpp_machine(128),
        cluster_machine(16, network=ATM_155, dedicated=True),
        cluster_machine(16, network=ETHERNET_10),
        cluster_machine(16, network=FDDI, name="FDDI cluster (16)"),
        hierarchical_machine(8, 8),
    )


def _pattern_volume(pattern: CommPattern, data_mb: float,
                    counts: np.ndarray) -> np.ndarray:
    """``CommPattern.volume_per_node_mb`` over an array of process counts.

    Each branch repeats the scalar formula with the same operation order,
    so results are bit-identical; ``counts == 1`` yields 0.
    """
    p = counts.astype(np.float64)
    if pattern is CommPattern.EMBARRASSING:
        vol = np.zeros_like(p)
    elif pattern is CommPattern.REPLICATED:
        vol = 0.01 * data_mb / p
    elif pattern is CommPattern.HALO_2D:
        vol = 4.0 * np.sqrt(data_mb / p) * 1e-2
    elif pattern is CommPattern.HALO_3D:
        # numpy's array ``**`` may route through the platform's SIMD pow
        # (libmvec), which is allowed a 1-2 ulp divergence from the
        # scalar ``pow`` the reference model calls.  Evaluating the
        # handful of unique counts with Python-scalar arithmetic keeps
        # the sweep bit-exact at negligible cost.
        unique, inverse = np.unique(counts, return_inverse=True)
        per_count = np.array(
            [6.0 * (data_mb / float(c)) ** (2.0 / 3.0) * 1e-2
             for c in unique])
        vol = per_count[inverse].reshape(counts.shape)
    elif pattern is CommPattern.ALL_TO_ALL:
        vol = data_mb / p
    elif pattern is CommPattern.IRREGULAR:
        vol = 0.005 * data_mb / p
    else:  # pragma: no cover
        raise AssertionError("unreachable")
    return np.where(counts == 1, 0.0, vol)


def _pattern_messages(pattern: CommPattern, counts: np.ndarray) -> np.ndarray:
    """``CommPattern.messages_per_node`` over an array of process counts."""
    p = counts.astype(np.float64)
    if pattern is CommPattern.EMBARRASSING:
        msg = np.zeros_like(p)
    elif pattern is CommPattern.REPLICATED:
        msg = np.full_like(p, 2.0)
    elif pattern is CommPattern.HALO_2D:
        msg = np.full_like(p, 4.0)
    elif pattern is CommPattern.HALO_3D:
        msg = np.full_like(p, 6.0)
    elif pattern is CommPattern.ALL_TO_ALL:
        msg = p - 1.0
    elif pattern is CommPattern.IRREGULAR:
        msg = np.full_like(p, 50.0)
    else:  # pragma: no cover
        raise AssertionError("unreachable")
    return np.where(counts == 1, 0.0, msg)


def _comm_arrays(
    machines: Sequence[MachineModel],
    workloads: Sequence[Workload],
    counts: np.ndarray,
) -> np.ndarray:
    """Per-point communication time, shape ``(M, W, N)``.

    Flat machines take the shared-medium or switched branch on their own
    interconnect; hypernode machines take the hierarchical branch
    (intra-hypernode traffic over the bus, boundary traffic over the
    fabric).  All three branches are whole-array.
    """
    n_m, n_w, n_n = len(machines), len(workloads), counts.size
    hyper = np.array([m.hypernode_size for m in machines],
                     dtype=np.int64)[:, None, None]
    bw = np.array([m.interconnect.bandwidth_mbps
                   for m in machines])[:, None, None]
    lat = np.array([m.interconnect.latency_us
                    for m in machines])[:, None, None]
    net_shared = np.array([m.interconnect.shared_medium
                           for m in machines])[:, None, None]
    steps = np.array([float(w.steps) for w in workloads])[None, :, None]
    p = counts[None, None, :]

    # Pattern volumes/messages at the full process count (W, N) and at the
    # hypernode count (M, W, N): for flat machines n_hyper == p, so the
    # hypernode evaluation degenerates to the flat one.  Clamped to >= 1:
    # points with p < hypernode_size are NODE_GRID-infeasible and zeroed
    # by the caller, but the arithmetic must stay division-safe.
    n_hyper = np.maximum(p // hyper, 1)                     # (M, 1, N)
    vol_p = np.empty((n_w, n_n))
    msg_p = np.empty((n_w, n_n))
    vol_h = np.empty((n_m, n_w, n_n))
    msg_h = np.empty((n_m, n_w, n_n))
    for j, w in enumerate(workloads):
        vol_p[j] = _pattern_volume(w.pattern, w.data_mb, counts)
        msg_p[j] = _pattern_messages(w.pattern, counts)
        vol_h[:, j, :] = _pattern_volume(w.pattern, w.data_mb,
                                         n_hyper[:, 0, :])
        msg_h[:, j, :] = _pattern_messages(w.pattern, n_hyper[:, 0, :])

    # Flat branch: shared media serialize the aggregate volume.
    per_step_shared = (p * vol_p[None]) / bw + msg_p[None] * lat * 1e-6
    per_step_switched = vol_p[None] / bw + msg_p[None] * lat * 1e-6
    comm_flat = steps * np.where(net_shared, per_step_shared,
                                 per_step_switched)

    # Hierarchical branch (scalar: _hierarchical_step_time).
    total_volume = p * vol_p[None]                          # (M, W, N)
    single_hyper = n_hyper <= 1
    inter = np.where(single_hyper, 0.0, vol_h)
    inter_msgs = np.where(single_hyper, 0.0, msg_h)
    intra_total = np.maximum(total_volume - n_hyper * inter, 0.0)
    intra_time = (intra_total / n_hyper) / SMP_BUS.bandwidth_mbps
    inter_time = inter / bw + inter_msgs * lat * 1e-6
    comm_hier = steps * (intra_time + inter_time)

    comm = np.where(hyper > 1, comm_hier, comm_flat)
    return np.where(p == 1, 0.0, comm)


@dataclass(frozen=True)
class SweepResult:
    """The evaluated design-space tensor.

    All arrays have shape ``(machines, workloads, node_counts)``.
    Infeasible points carry zero time components (matching the scalar
    model), ``inf`` wall-clock time, and zero speedup/efficiency.
    Speedups are relative to the same machine at its smallest
    instantiable node count (1 for flat machines, one hypernode for
    hierarchical ones).
    """

    machines: tuple[MachineModel, ...]
    workloads: tuple[Workload, ...]
    node_counts: np.ndarray
    feasible: np.ndarray
    reason_codes: np.ndarray
    serial_time_s: np.ndarray
    compute_time_s: np.ndarray
    comm_time_s: np.ndarray
    times_s: np.ndarray
    speedups: np.ndarray
    efficiencies: np.ndarray
    #: Per-machine baseline node count the speedups divide against.
    baseline_nodes: np.ndarray = field(repr=False, default=None)
    #: Baseline wall-clock time per (machine, workload), ``inf`` when the
    #: baseline itself cannot run.
    baseline_times_s: np.ndarray = field(repr=False, default=None)

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.times_s.shape

    def machine_index(self, name: str) -> int:
        for i, m in enumerate(self.machines):
            if m.name == name:
                return i
        raise ValidationError(f"unknown machine {name!r}",
                              context={"known": [m.name for m in
                                                 self.machines]})

    def workload_index(self, name: str) -> int:
        for j, w in enumerate(self.workloads):
            if w.name == name:
                return j
        raise ValidationError(f"unknown workload {name!r}",
                              context={"known": [w.name for w in
                                                 self.workloads]})

    def reason_text(self, i: int, j: int, k: int) -> str | None:
        """The scalar model's infeasibility message for one point
        (``None`` when the point is feasible)."""
        code = InfeasibleReason(int(self.reason_codes[i, j, k]))
        if code is InfeasibleReason.NONE:
            return None
        machine = self.machines[i]
        workload = self.workloads[j]
        n = int(self.node_counts[k])
        if code is InfeasibleReason.NODE_GRID:
            return (f"{machine.name}: {n} nodes not a multiple of the "
                    f"{machine.hypernode_size}-processor hypernode")
        if code is InfeasibleReason.MIN_MEMORY:
            if machine.shared_memory:
                pool = n * machine.node_memory_mb
            else:
                pool = machine.node_memory_mb * machine.hypernode_size
            return (
                f"needs {workload.min_memory_mb:.0f} MB closely coupled; "
                f"{'pool' if machine.shared_memory else 'hypernode'} has "
                f"{pool:.0f} MB"
            )
        per_node = workload.data_mb / n
        return (
            f"working set {per_node:.0f} MB/node exceeds "
            f"{machine.node_memory_mb:.0f} MB"
        )

    def result_at(self, i: int, j: int, k: int):
        """Reconstruct the scalar :class:`ExecutionResult` for one point.

        Raises :class:`ValidationError` for node-grid-mismatch points:
        the corresponding machine configuration cannot be built.
        """
        from repro.simulate.execution import ExecutionResult

        code = InfeasibleReason(int(self.reason_codes[i, j, k]))
        if code is InfeasibleReason.NODE_GRID:
            raise ValidationError(
                "no machine exists at this grid point",
                context={"machine": self.machines[i].name,
                         "nodes": int(self.node_counts[k]),
                         "hypernode": self.machines[i].hypernode_size},
            )
        machine = self.machines[i].with_nodes(int(self.node_counts[k]))
        return ExecutionResult(
            workload=self.workloads[j],
            machine=machine,
            feasible=bool(self.feasible[i, j, k]),
            infeasible_reason=self.reason_text(i, j, k),
            serial_time_s=float(self.serial_time_s[i, j, k]),
            compute_time_s=float(self.compute_time_s[i, j, k]),
            comm_time_s=float(self.comm_time_s[i, j, k]),
        )


def _evaluate(
    machines: tuple[MachineModel, ...],
    workloads: tuple[Workload, ...],
    counts: np.ndarray,
) -> dict[str, np.ndarray]:
    """The core broadcast evaluation; returns raw component arrays."""
    rate = np.array([m.node_mops_per_s for m in machines])[:, None, None]
    node_mem = np.array([m.node_memory_mb for m in machines])[:, None, None]
    hyper = np.array([m.hypernode_size for m in machines],
                     dtype=np.int64)[:, None, None]
    shared_mem = np.array([m.shared_memory for m in machines])[:, None, None]
    total = np.array([w.total_mops for w in workloads])[None, :, None]
    frac = np.array([w.parallel_fraction for w in workloads])[None, :, None]
    data = np.array([w.data_mb for w in workloads])[None, :, None]
    min_mem = np.array([w.min_memory_mb for w in workloads])[None, :, None]
    p = counts[None, None, :]

    grid_ok = (p % hyper) == 0

    # Memory feasibility (scalar: _memory_check, same check order).
    pool = np.where(shared_mem, p * node_mem, node_mem * hyper)
    floor_fails = min_mem > pool
    per_node = data / p
    node_fails = per_node > node_mem

    reason = np.where(
        ~grid_ok, np.int8(InfeasibleReason.NODE_GRID),
        np.where(floor_fails, np.int8(InfeasibleReason.MIN_MEMORY),
                 np.where(node_fails, np.int8(InfeasibleReason.NODE_MEMORY),
                          np.int8(InfeasibleReason.NONE))))
    feasible = reason == InfeasibleReason.NONE

    serial = np.broadcast_to(total * (1.0 - frac) / rate, feasible.shape)
    compute = total * frac / (rate * p)
    comm = _comm_arrays(machines, workloads, counts)

    zero = np.float64(0.0)
    serial = np.where(feasible, serial, zero)
    compute = np.where(feasible, compute, zero)
    comm = np.where(feasible, comm, zero)
    times = np.where(feasible, (serial + compute) + comm, np.inf)

    # Efficiency: delivered rate over aggregate sustained rate, exactly
    # as the (unclamped) scalar property computes it.
    aggregate = p * rate
    efficiency = np.where(feasible, (total / times) / aggregate, zero)
    return {
        "feasible": feasible,
        "reason_codes": reason,
        "serial_time_s": serial,
        "compute_time_s": compute,
        "comm_time_s": comm,
        "times_s": times,
        "efficiencies": efficiency,
    }


def sweep(
    machines: Sequence[MachineModel] | MachineModel,
    workloads: Sequence[Workload] | Workload,
    node_counts: Sequence[int] | np.ndarray,
) -> SweepResult:
    """Evaluate the execution model over machines x workloads x nodes.

    Every machine is re-instantiated at every node count in
    ``node_counts`` (the machines' own ``n_nodes`` are ignored); node
    counts a machine cannot take (hypernode mismatch) become
    ``NODE_GRID``-infeasible points rather than errors.  Bit-exact
    against :func:`~repro.simulate.execution.simulate_execution`.
    """
    if isinstance(machines, MachineModel):
        machines = (machines,)
    if isinstance(workloads, Workload):
        workloads = (workloads,)
    machines = tuple(machines)
    workloads = tuple(workloads)
    if not machines:
        raise ValidationError("machines must be non-empty",
                              context={"got": 0, "valid": ">= 1 machine"})
    if not workloads:
        raise ValidationError("workloads must be non-empty",
                              context={"got": 0, "valid": ">= 1 workload"})
    counts = validate_node_counts(node_counts)

    with trace("simulate.sweep", machines=len(machines),
               workloads=len(workloads), nodes=int(counts.size)):
        out = _evaluate(machines, workloads, counts)
        counter_inc("sweep.calls")
        counter_inc("sweep.points",
                    len(machines) * len(workloads) * counts.size)

        # Baselines: the machine at its smallest instantiable node count
        # (1 for flat machines, one hypernode for hierarchical ones).
        baseline_nodes = np.array([m.hypernode_size for m in machines],
                                  dtype=np.int64)
        unique_bases = np.unique(baseline_nodes)
        base_eval = _evaluate(machines, workloads, unique_bases)
        base_col = np.searchsorted(unique_bases, baseline_nodes)
        baseline_times = base_eval["times_s"][
            np.arange(len(machines)), :, base_col]        # (M, W)
        speedup_ok = out["feasible"] & np.isfinite(
            baseline_times)[:, :, None]
        with np.errstate(invalid="ignore"):
            speedups = np.where(
                speedup_ok, baseline_times[:, :, None] / out["times_s"], 0.0)

    return SweepResult(
        machines=machines,
        workloads=workloads,
        node_counts=counts,
        feasible=out["feasible"],
        reason_codes=out["reason_codes"],
        serial_time_s=out["serial_time_s"],
        compute_time_s=out["compute_time_s"],
        comm_time_s=out["comm_time_s"],
        times_s=out["times_s"],
        speedups=speedups,
        efficiencies=out["efficiencies"],
        baseline_nodes=baseline_nodes,
        baseline_times_s=baseline_times,
    )
