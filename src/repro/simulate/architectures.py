"""Machine models for the simulator.

A :class:`MachineModel` is the runtime counterpart of a catalog
:class:`~repro.machines.spec.MachineSpec`: node count, *sustained* per-node
rate, per-node memory, and an interconnect.  Sustained rates are peak times
an architecture-dependent efficiency (vector machines sustain a far larger
fraction of peak than cache-based micros — part of why the paper warns that
CTP "is too imprecise to adequately distinguish between the deliverable
performance of systems").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import check_positive
from repro.machines.spec import Architecture
from repro.simulate.interconnect import (
    ATM_155,
    ETHERNET_10,
    Interconnect,
    PARAGON_MESH,
    SMP_BUS,
)

__all__ = [
    "MachineModel",
    "SUSTAINED_FRACTION",
    "smp_machine",
    "mpp_machine",
    "cluster_machine",
    "hierarchical_machine",
    "vector_machine",
]

#: Sustained fraction of peak node rate by architecture class.
SUSTAINED_FRACTION: dict[Architecture, float] = {
    Architecture.VECTOR: 0.50,
    Architecture.SMP: 0.20,
    Architecture.MPP: 0.18,
    Architecture.DEDICATED_CLUSTER: 0.18,
    Architecture.AD_HOC_CLUSTER: 0.15,
    Architecture.UNIPROCESSOR: 0.20,
}


@dataclass(frozen=True)
class MachineModel:
    """A runnable machine configuration.

    Attributes
    ----------
    node_mops_per_s:
        Sustained per-node rate in millions of operations per second.
    node_memory_mb:
        Memory per node (an SMP's nodes share one pool; see
        ``shared_memory``).
    interconnect:
        The fabric connecting nodes.
    shared_memory:
        True for SMPs: the workload's closely-coupled memory floor is
        checked against the whole machine's pool, and halo "communication"
        happens over the memory bus.
    """

    name: str
    architecture: Architecture
    n_nodes: int
    node_mops_per_s: float
    node_memory_mb: float
    interconnect: Interconnect
    shared_memory: bool = False
    #: Processors per shared-memory hypernode (1 = flat machine).  When
    #: >1 the machine is hierarchical (Exemplar-style): halo traffic
    #: inside a hypernode moves over the memory bus, traffic between
    #: hypernodes over ``interconnect``.
    hypernode_size: int = 1
    notes: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"{self.name}: n_nodes must be >= 1")
        check_positive(self.node_mops_per_s, f"{self.name}: node_mops_per_s")
        check_positive(self.node_memory_mb, f"{self.name}: node_memory_mb")
        if self.hypernode_size < 1:
            raise ValueError(f"{self.name}: hypernode_size must be >= 1")
        if self.n_nodes % self.hypernode_size != 0:
            raise ValueError(
                f"{self.name}: n_nodes must be a multiple of hypernode_size"
            )

    @property
    def aggregate_mops_per_s(self) -> float:
        """Total sustained compute rate."""
        return self.n_nodes * self.node_mops_per_s

    @property
    def total_memory_mb(self) -> float:
        return self.n_nodes * self.node_memory_mb

    def with_nodes(self, n: int) -> "MachineModel":
        """The same machine at a different node count."""
        if n < 1:
            raise ValueError("n must be >= 1")
        if n % self.hypernode_size != 0:
            raise ValueError(
                f"{self.name}: {n} nodes not a multiple of the "
                f"{self.hypernode_size}-processor hypernode"
            )
        return MachineModel(
            name=self.name,
            architecture=self.architecture,
            n_nodes=n,
            node_mops_per_s=self.node_mops_per_s,
            node_memory_mb=self.node_memory_mb,
            interconnect=self.interconnect,
            shared_memory=self.shared_memory,
            hypernode_size=self.hypernode_size,
            notes=self.notes,
        )


def smp_machine(
    n: int = 16,
    peak_node_mops: float = 450.0,
    node_memory_mb: float = 256.0,
    bus: Interconnect = SMP_BUS,
    name: str | None = None,
) -> MachineModel:
    """A shared-memory multiprocessor (PowerChallenge-class default)."""
    return MachineModel(
        name=name or f"SMP ({n} proc)",
        architecture=Architecture.SMP,
        n_nodes=n,
        node_mops_per_s=peak_node_mops * SUSTAINED_FRACTION[Architecture.SMP],
        node_memory_mb=node_memory_mb,
        interconnect=bus,
        shared_memory=True,
    )


def mpp_machine(
    n: int = 128,
    peak_node_mops: float = 250.0,
    node_memory_mb: float = 64.0,
    fabric: Interconnect = PARAGON_MESH,
    name: str | None = None,
) -> MachineModel:
    """A distributed-memory MPP (Paragon-class default)."""
    return MachineModel(
        name=name or f"MPP ({n} nodes)",
        architecture=Architecture.MPP,
        n_nodes=n,
        node_mops_per_s=peak_node_mops * SUSTAINED_FRACTION[Architecture.MPP],
        node_memory_mb=node_memory_mb,
        interconnect=fabric,
    )


def cluster_machine(
    n: int = 16,
    peak_node_mops: float = 300.0,
    node_memory_mb: float = 128.0,
    network: Interconnect = ETHERNET_10,
    dedicated: bool = False,
    name: str | None = None,
) -> MachineModel:
    """A cluster of workstations.

    ``dedicated=True`` models rack-mounted same-model machines on a faster
    interconnect (pass e.g. ``network=ATM_155``); the default is the ad hoc
    office-LAN farm.
    """
    arch = (
        Architecture.DEDICATED_CLUSTER if dedicated else Architecture.AD_HOC_CLUSTER
    )
    return MachineModel(
        name=name or f"{'dedicated' if dedicated else 'ad hoc'} cluster ({n})",
        architecture=arch,
        n_nodes=n,
        node_mops_per_s=peak_node_mops * SUSTAINED_FRACTION[arch],
        node_memory_mb=node_memory_mb,
        interconnect=network,
    )


def hierarchical_machine(
    n_hypernodes: int = 8,
    procs_per_hypernode: int = 8,
    peak_node_mops: float = 300.0,
    node_memory_mb: float = 256.0,
    fabric: Interconnect = PARAGON_MESH,
    name: str | None = None,
) -> MachineModel:
    """An Exemplar-style hierarchical machine: shared-memory hypernodes
    "grouped together in a distributed-memory fashion" (Chapter 3).

    Memory feasibility is per hypernode pool (a hypernode's processors
    share memory), handled by the execution model via ``hypernode_size``.
    """
    if n_hypernodes < 1 or procs_per_hypernode < 1:
        raise ValueError("hypernode counts must be >= 1")
    return MachineModel(
        name=name or (f"hierarchical ({n_hypernodes} x "
                      f"{procs_per_hypernode})"),
        architecture=Architecture.MPP,
        n_nodes=n_hypernodes * procs_per_hypernode,
        node_mops_per_s=peak_node_mops * SUSTAINED_FRACTION[Architecture.MPP],
        node_memory_mb=node_memory_mb,
        interconnect=fabric,
        hypernode_size=procs_per_hypernode,
    )


def vector_machine(
    n: int = 16,
    peak_node_mops: float = 1_725.0,
    node_memory_mb: float = 2_048.0,
    name: str | None = None,
) -> MachineModel:
    """A vector-pipelined supercomputer (C916-class default).

    Modeled as a shared-memory machine with very high sustained node rates
    and a generous memory pool.
    """
    return MachineModel(
        name=name or f"vector ({n} proc)",
        architecture=Architecture.VECTOR,
        n_nodes=n,
        node_mops_per_s=peak_node_mops * SUSTAINED_FRACTION[Architecture.VECTOR],
        node_memory_mb=node_memory_mb,
        interconnect=SMP_BUS,
        shared_memory=True,
    )


def _default_dedicated_cluster(n: int) -> MachineModel:  # pragma: no cover
    return cluster_machine(n, network=ATM_155, dedicated=True)
