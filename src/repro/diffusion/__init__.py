"""Technology diffusion and the export-control policy machinery.

Three models operationalize Chapter 3's diffusion arguments:

* ``lag`` — the assimilation lag between a microprocessor's Western debut
  and its appearance in Russian/Chinese/Indian systems, *derived* from the
  machine catalog;
* ``acquisition`` — the premium (delay, cost, detection risk) a restricted
  buyer pays to acquire a system, as a function of the target system's
  controllability: "the premium paid in time, effort, money, and know-how
  by countries seeking to circumvent the controls diminishes rapidly"
  below the frontier;
* ``policy`` — the licensing regime itself: the five safeguard tiers of
  the 1991/1994 rules, threshold history, and a policy-effectiveness
  summary (what a threshold actually protects, and what burden it puts on
  industry);
* ``networks`` — Chapter 6's networked-systems study: cluster ratings,
  building-block threshold crossings, and the premise-3 collapse scenario;
* ``policy_grid`` — the vectorized engine over ``policy``: columnar
  Chapter-5 scorecards for whole threshold x year lattices, batched
  license decisions, and threshold-history series, all bit-exact against
  the scalar evaluators.
"""

from repro.diffusion.lag import (
    AssimilationLag,
    observed_lags,
    mean_lag_years,
)
from repro.diffusion.acquisition import (
    AcquisitionAttempt,
    AcquisitionStats,
    acquisition_premium,
    acquisition_premium_batch,
    simulate_acquisitions,
    simulate_acquisitions_batch,
)
from repro.diffusion.networks import (
    BuildingBlockScenario,
    building_block_year,
    cstac_ctp,
    network_ctp,
    premise3_collapse_year,
)
from repro.diffusion.policy import (
    SafeguardTier,
    TIER_BY_DESTINATION,
    ThresholdEra,
    THRESHOLD_HISTORY,
    threshold_at,
    ExportControlPolicy,
    LicenseDecision,
    PolicyEffectiveness,
    evaluate_policy,
)
from repro.diffusion.policy_grid import (
    PolicyGrid,
    evaluate_policy_grid,
    license_decision_batch,
    threshold_at_series,
)

__all__ = [
    "AssimilationLag",
    "observed_lags",
    "mean_lag_years",
    "AcquisitionAttempt",
    "AcquisitionStats",
    "acquisition_premium",
    "acquisition_premium_batch",
    "simulate_acquisitions",
    "simulate_acquisitions_batch",
    "BuildingBlockScenario",
    "building_block_year",
    "cstac_ctp",
    "network_ctp",
    "premise3_collapse_year",
    "SafeguardTier",
    "TIER_BY_DESTINATION",
    "ThresholdEra",
    "THRESHOLD_HISTORY",
    "threshold_at",
    "ExportControlPolicy",
    "LicenseDecision",
    "PolicyEffectiveness",
    "evaluate_policy",
    "PolicyGrid",
    "evaluate_policy_grid",
    "license_decision_batch",
    "threshold_at_series",
]
