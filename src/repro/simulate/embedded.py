"""Embedded/deployable computing under size, weight, and power limits.

Chapter 4, repeatedly: deployed military systems are "subject to size,
weight, and power consumption constraints that preclude the use of
clustered or networked systems", and direct operational support is growing
because advances "greatly increased computer performance while
simultaneously reducing the size, weight, and power requirements".

The model: deployable computing capability is power-limited, with a
system-level Mtops-per-watt efficiency that doubles on the commodity
silicon cadence.  Calibration anchors (mid-1995):

* the Mercury RACE array — "about 7,400 Mtops" in a shipboard rack of a
  couple of kilowatts;
* the F-22 avionics suite — ~9,000 Mtops from a pair of computers inside
  a fighter's avionics power budget (famously at the edge of feasible);
* the deployed NAASW sensor suite — ~500 Mtops, *not* yet man-packable in
  1995.

All three land correctly at 1.0 Mtops/W (system level) in 1992 doubling
every two years.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro._util import check_positive, check_year
from repro.apps.requirements import ApplicationRequirement

__all__ = [
    "Platform",
    "embedded_mtops_per_watt",
    "swap_limited_mtops",
    "year_deployable",
    "DeployabilityAssessment",
    "assess_deployability",
]

#: System-level (processor + memory + I/O + MIL-spec packaging + cooling)
#: efficiency anchor: 1 Mtops per watt in 1992.
_EFFICIENCY_ANCHOR_YEAR = 1992.0
_EFFICIENCY_ANCHOR_MTOPS_PER_W = 1.0
#: Commodity-silicon cadence.
_DOUBLING_YEARS = 2.0


class Platform(enum.Enum):
    """Deployable platforms and their processing power budgets (watts)."""

    MAN_PACK = 50.0
    GROUND_VEHICLE = 400.0
    AIRBORNE_POD = 1_000.0
    FIGHTER_AVIONICS_BAY = 2_500.0
    THEATER_VAN = 5_000.0
    SHIPBOARD = 10_000.0

    @property
    def power_budget_w(self) -> float:
        return self.value


def embedded_mtops_per_watt(year: float) -> float:
    """System-level deployable efficiency at ``year``."""
    check_year(year, "year")
    exponent = (year - _EFFICIENCY_ANCHOR_YEAR) / _DOUBLING_YEARS
    return _EFFICIENCY_ANCHOR_MTOPS_PER_W * 2.0**exponent


def swap_limited_mtops(year: float, power_budget_w: float) -> float:
    """Deployable capability inside a power budget at ``year``."""
    check_positive(power_budget_w, "power_budget_w")
    return power_budget_w * embedded_mtops_per_watt(year)


def year_deployable(required_mtops: float, power_budget_w: float) -> float:
    """First year ``required_mtops`` fits in ``power_budget_w``."""
    check_positive(required_mtops, "required_mtops")
    check_positive(power_budget_w, "power_budget_w")
    ratio = required_mtops / (power_budget_w * _EFFICIENCY_ANCHOR_MTOPS_PER_W)
    return _EFFICIENCY_ANCHOR_YEAR + _DOUBLING_YEARS * float(np.log2(ratio))


@dataclass(frozen=True)
class DeployabilityAssessment:
    """Can an application's deployed form fit a platform at a date?"""

    application: ApplicationRequirement
    platform: Platform
    year: float
    required_mtops: float
    available_mtops: float

    @property
    def deployable(self) -> bool:
        return self.available_mtops >= self.required_mtops

    @property
    def first_deployable_year(self) -> float:
        return year_deployable(self.required_mtops,
                               self.platform.power_budget_w)


def assess_deployability(
    application: ApplicationRequirement,
    platform: Platform,
    year: float = 1995.5,
) -> DeployabilityAssessment:
    """Assess one (application, platform, year) combination.

    Uses the application's *undrifted* minimum: deployed systems carry the
    full real-time requirement (there is no "run it longer" escape on a
    missile-warning processor).
    """
    check_year(year, "year")
    return DeployabilityAssessment(
        application=application,
        platform=platform,
        year=year,
        required_mtops=application.min_mtops,
        available_mtops=swap_limited_mtops(year, platform.power_budget_w),
    )
