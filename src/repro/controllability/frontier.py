"""The uncontrollability frontier: the lower bound of Chapter 3.

Two rules turn per-product assessments into a time series:

1. **Classification** — only products whose composite index falls below the
   uncontrollable threshold join the frontier population (volume SMPs and
   workstations; never vendor-direct machine-room systems).
2. **The two-year lag** — "such systems become uncontrollable as they reach
   the end of their product cycle, approximately two years after they are
   first shipped" — so a product introduced at year *t* joins the
   population at *t + 2*.

Products are rated at their *maximum* configuration because field
upgradability makes the entry configuration meaningless for control
purposes.  Beyond catalog coverage the frontier is projected along the SMP
top-of-line trend, shifted right by the same lag.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro._util import check_year
from repro.controllability.index import (
    Classification,
    ControllabilityWeights,
    DEFAULT_WEIGHTS,
    assess,
)
from repro.machines.catalog import COMMERCIAL_SYSTEMS
from repro.machines.spec import MachineSpec
from repro.trends.curves import ExponentialTrend, fit_exponential
from repro.trends.smp import smp_trend

__all__ = [
    "UNCONTROLLABILITY_LAG_YEARS",
    "FrontierPoint",
    "uncontrollable_population",
    "lower_bound_uncontrollable",
    "frontier_series",
    "frontier_trend",
    "projected_frontier_mtops",
]

#: "...approximately two years after they are first shipped" (Chapter 3).
UNCONTROLLABILITY_LAG_YEARS = 2.0


@dataclass(frozen=True)
class FrontierPoint:
    """The frontier value at one date, with its defining machine."""

    year: float
    mtops: float
    machine: MachineSpec | None


def uncontrollable_population(
    year: float,
    weights: ControllabilityWeights = DEFAULT_WEIGHTS,
    lag_years: float = UNCONTROLLABILITY_LAG_YEARS,
    include_marginal: bool = False,
) -> list[MachineSpec]:
    """Catalog machines that are uncontrollable at ``year``.

    A machine qualifies when its composite index classifies it
    UNCONTROLLABLE (optionally MARGINAL) and it has been on the market for
    at least ``lag_years``.
    """
    check_year(year, "year")
    allowed = {Classification.UNCONTROLLABLE}
    if include_marginal:
        allowed.add(Classification.MARGINAL)
    population = []
    for m in COMMERCIAL_SYSTEMS:
        if m.year + lag_years > year:
            continue
        if assess(m, weights).classification in allowed:
            population.append(m)
    return sorted(population, key=lambda m: (m.year, m.key))


def lower_bound_uncontrollable(
    year: float,
    weights: ControllabilityWeights = DEFAULT_WEIGHTS,
    lag_years: float = UNCONTROLLABILITY_LAG_YEARS,
) -> FrontierPoint:
    """Performance of the most powerful uncontrollable system at ``year``.

    Each qualifying product is rated at its maximum configuration.  Years
    before any product qualifies get a zero frontier (everything was
    controllable in, say, 1980).
    """
    best_mtops = 0.0
    best_machine: MachineSpec | None = None
    for m in uncontrollable_population(year, weights, lag_years):
        rating = m.max_configuration().ctp_mtops
        if rating > best_mtops:
            best_mtops = rating
            best_machine = m
    return FrontierPoint(year=year, mtops=best_mtops, machine=best_machine)


def frontier_series(
    years: Sequence[float] | np.ndarray,
    weights: ControllabilityWeights = DEFAULT_WEIGHTS,
    lag_years: float = UNCONTROLLABILITY_LAG_YEARS,
) -> np.ndarray:
    """Frontier values on a year grid (vectorized over the grid)."""
    return np.array(
        [lower_bound_uncontrollable(float(y), weights, lag_years).mtops
         for y in np.asarray(years, dtype=float)]
    )


def frontier_trend(
    fit_from: float = 1992.0,
    fit_through: float = 1999.9,
    weights: ControllabilityWeights = DEFAULT_WEIGHTS,
    lag_years: float = UNCONTROLLABILITY_LAG_YEARS,
) -> ExponentialTrend:
    """Exponential fit of the frontier over its catalog-supported span."""
    years = np.arange(fit_from, fit_through, 0.25)
    values = frontier_series(years, weights, lag_years)
    mask = values > 0
    if mask.sum() < 2:
        raise ValueError("frontier has fewer than two positive samples to fit")
    return fit_exponential(years[mask], values[mask])


def projected_frontier_mtops(
    year: float,
    fit_through: float = 1995.5,
    lag_years: float = UNCONTROLLABILITY_LAG_YEARS,
) -> float:
    """Frontier projected beyond catalog coverage.

    Uses the SMP top-of-line trend fitted through ``fit_through`` (what the
    study's authors could see), shifted right by the uncontrollability lag.
    Within catalog coverage prefer :func:`lower_bound_uncontrollable`.
    """
    check_year(year, "year")
    return float(smp_trend(fit_through).shifted(lag_years).value(year))
