"""Covert-acquisition premium model.

"When controls are effective, these countries pay a premium in time and
expense to acquire the systems, lack crucial vendor support and training,
run a high risk of detection, or are forced to pursue their goals using
much less desirable technological approaches" (Chapter 3).  The premium a
restricted buyer pays is driven by the *controllability* of the cheapest
adequate system:

* below the uncontrollability frontier: no premium worth mentioning —
  secondary markets, third-party channels, no vendor dependence;
* above it: delay, cost multiple, and detection probability all scale with
  the controllability index of the machines that could satisfy the
  requirement.

``simulate_acquisitions`` Monte-Carlos attempts so policy benches can
quote expected delay and interdiction rates under different thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro._util import check_positive, check_year
from repro.obs.errors import ValidationError
from repro.obs.trace import counter_inc, trace
from repro.controllability.index import assess
from repro.machines import catalog as _catalog
from repro.machines.spec import MachineSpec

__all__ = [
    "AcquisitionAttempt",
    "AcquisitionStats",
    "acquisition_premium",
    "acquisition_premium_batch",
    "simulate_acquisitions",
    "simulate_acquisitions_batch",
    "clear_acquisition_caches",
]


@dataclass(frozen=True)
class AcquisitionAttempt:
    """Deterministic premium for acquiring a capability level.

    ``controllability`` is the acquisition severity in [0, 1] of the
    easiest system on the market (at ``year``) that meets the target —
    controllability class blended with product freshness; premiums scale
    with it.  ``machine`` is that system.
    """

    target_mtops: float
    year: float
    machine: MachineSpec | None
    controllability: float
    expected_delay_years: float
    cost_multiplier: float
    detection_probability: float

    @property
    def feasible(self) -> bool:
        """False when no cataloged system meets the target at all."""
        return self.machine is not None


@lru_cache(maxsize=512)
def _market_at(year: float, lag_years: float = 0.0) -> tuple[MachineSpec, ...]:
    """Catalog systems on the market at ``year`` (memoized per date).

    Policy grids and Monte-Carlo sweeps ask for the same few dates
    thousands of times; the scan is pure, so one pass per distinct
    ``(year, lag)`` serves them all.  ``clear_acquisition_caches`` is the
    eviction hook.
    """
    return tuple(m for m in _catalog.COMMERCIAL_SYSTEMS
                 if m.year + lag_years <= year)


#: Controllability index below which acquisition carries no class premium
#: (matches the UNCONTROLLABLE classification boundary's soft edge).
_SEVERITY_FLOOR = 0.35
#: Weight of the freshness term: a just-introduced product has no
#: secondary market yet (the two-year-lag rule applied to acquisition).
_FRESHNESS_WEIGHT = 0.6
_LAG_YEARS = 2.0


def _severity(machine: MachineSpec, year: float) -> float:
    """Acquisition difficulty of one machine at one date, in [0, 1]."""
    index = assess(machine).index
    class_severity = max(0.0, (index - _SEVERITY_FLOOR) / (1.0 - _SEVERITY_FLOOR)) ** 2
    freshness = _FRESHNESS_WEIGHT * float(
        np.clip((machine.year + _LAG_YEARS - year) / _LAG_YEARS, 0.0, 1.0)
    )
    return max(class_severity, freshness)


def acquisition_premium(
    target_mtops: float,
    year: float,
    safeguards_in_force: bool = True,
) -> AcquisitionAttempt:
    """Premium for covertly acquiring ``target_mtops`` at ``year``.

    The buyer shops for the *easiest* system whose maximum configuration
    meets the target (field upgrades being the known loophole).  Difficulty
    combines the machine's controllability class (quadratic above the
    uncontrollable band, so "the premium ... diminishes rapidly" below the
    frontier) with a freshness term (a just-shipped product has no
    secondary market — the two-year-lag rule).  Premiums:

    * delay: up to ~3 years for a controllable, safeguarded machine
      (matching the observed multi-year assimilation lags), negligible for
      mature uncontrollable products;
    * cost: up to ~3x (intermediaries, spares without vendor support);
    * detection: up to ~85% for one-of-a-kind direct-sale systems.
    """
    check_positive(target_mtops, "target_mtops")
    check_year(year, "year")
    def _reachable_rating(m: MachineSpec) -> float:
        # Only *field* upgrades are available to a covert buyer; vendor-
        # installed expansions are not (that is the Chapter 3 loophole's
        # exact boundary).
        return m.max_configuration().ctp_mtops if m.field_upgradable else m.ctp_mtops

    candidates = [
        m for m in _market_at(year) if _reachable_rating(m) >= target_mtops
    ]
    if not candidates:
        return AcquisitionAttempt(
            target_mtops=target_mtops, year=year, machine=None,
            controllability=1.0, expected_delay_years=float("inf"),
            cost_multiplier=float("inf"), detection_probability=1.0,
        )
    chosen = min(candidates, key=lambda m: (_severity(m, year), m.key))
    severity = _severity(chosen, year)
    scale = 1.0 if safeguards_in_force else 0.5
    return AcquisitionAttempt(
        target_mtops=target_mtops,
        year=year,
        machine=chosen,
        controllability=severity,
        expected_delay_years=3.0 * severity * scale,
        cost_multiplier=1.0 + 2.0 * severity * scale,
        detection_probability=min(0.85 * severity * scale, 0.95),
    )


def acquisition_premium_batch(
    targets_mtops: np.ndarray | list[float],
    year: float,
    safeguards_in_force: bool = True,
) -> list[AcquisitionAttempt]:
    """:func:`acquisition_premium` over a whole target grid at one date.

    The market is scanned and scored once: machines are sorted by the
    scalar path's selection key ``(severity, key)`` and the running
    maximum of reachable ratings over that order is bisected per target —
    the first position where the prefix maximum reaches the target is
    exactly the machine ``min(candidates, ...)`` picks, because at that
    position the maximum just increased, so that machine itself reaches
    the target and no earlier (easier) machine does.  Every premium field
    is computed with the scalar expression, so each element is
    bit-identical to the scalar call.
    """
    check_year(year, "year")
    targets = [float(t) for t in np.asarray(targets_mtops, dtype=float).ravel()]
    for t in targets:
        check_positive(t, "targets_mtops")
    with trace("acquisition.premium_batch") as span:
        if span is not None:
            span.tags["targets"] = len(targets)
        counter_inc("acquisition.premium_batch_calls")
        market = sorted(
            _market_at(year), key=lambda m: (_severity(m, year), m.key)
        )
        reachable = np.array([
            m.max_configuration().ctp_mtops if m.field_upgradable else m.ctp_mtops
            for m in market
        ])
        prefix_max = np.maximum.accumulate(reachable) if market else reachable
        scale = 1.0 if safeguards_in_force else 0.5
        out: list[AcquisitionAttempt] = []
        positions = np.searchsorted(prefix_max, np.asarray(targets), side="left")
        for target, pos in zip(targets, positions):
            p = int(pos)
            if p >= len(market):
                out.append(AcquisitionAttempt(
                    target_mtops=target, year=year, machine=None,
                    controllability=1.0, expected_delay_years=float("inf"),
                    cost_multiplier=float("inf"), detection_probability=1.0,
                ))
                continue
            chosen = market[p]
            severity = _severity(chosen, year)
            out.append(AcquisitionAttempt(
                target_mtops=target,
                year=year,
                machine=chosen,
                controllability=severity,
                expected_delay_years=3.0 * severity * scale,
                cost_multiplier=1.0 + 2.0 * severity * scale,
                detection_probability=min(0.85 * severity * scale, 0.95),
            ))
        return out


@dataclass(frozen=True)
class AcquisitionStats:
    """Monte-Carlo summary of repeated acquisition attempts."""

    target_mtops: float
    year: float
    n_attempts: int
    success_rate: float
    interdiction_rate: float
    mean_delay_years: float
    mean_cost_multiplier: float


def simulate_acquisitions(
    target_mtops: float,
    year: float,
    n_attempts: int = 1_000,
    seed: int = 0,
) -> AcquisitionStats:
    """Monte-Carlo acquisition attempts at one capability level.

    Each attempt draws a delay (exponential around the expected premium)
    and an interdiction event (Bernoulli at the detection probability);
    interdicted attempts are restarted with the delay accumulating, up to
    three tries, after which the buyer gives up.
    """
    if n_attempts < 1:
        raise ValidationError("n_attempts must be >= 1",
                              context={"got": n_attempts, "valid": ">= 1"})
    premium = acquisition_premium(target_mtops, year)
    rng = np.random.default_rng(np.random.SeedSequence([seed, n_attempts]))
    if not premium.feasible:
        return AcquisitionStats(
            target_mtops=target_mtops, year=year, n_attempts=n_attempts,
            success_rate=0.0, interdiction_rate=1.0,
            mean_delay_years=float("inf"), mean_cost_multiplier=float("inf"),
        )
    max_tries = 3
    base_delay = max(premium.expected_delay_years, 1e-3)
    # Vectorized: per attempt, per try, draw interdiction and delay.
    caught = rng.random((n_attempts, max_tries)) < premium.detection_probability
    delays = rng.exponential(base_delay, size=(n_attempts, max_tries))
    first_clear = np.argmax(~caught, axis=1)
    ever_clear = ~caught.all(axis=1)
    tries_used = np.where(ever_clear, first_clear + 1, max_tries)
    # Delay accumulates over failed tries plus the successful one.
    take = np.arange(max_tries) < tries_used[:, None]
    total_delay = (delays * take).sum(axis=1)
    cost = premium.cost_multiplier * (1.0 + 0.25 * (tries_used - 1))
    return AcquisitionStats(
        target_mtops=target_mtops,
        year=year,
        n_attempts=n_attempts,
        success_rate=float(np.mean(ever_clear)),
        interdiction_rate=float(np.mean(caught[:, 0])),
        mean_delay_years=float(np.mean(total_delay[ever_clear]))
        if ever_clear.any() else float("inf"),
        mean_cost_multiplier=float(np.mean(cost[ever_clear]))
        if ever_clear.any() else float("inf"),
    )


def simulate_acquisitions_batch(
    targets_mtops: np.ndarray | list[float],
    year: float,
    n_attempts: int = 1_000,
    seed: int = 0,
) -> list[AcquisitionStats]:
    """:func:`simulate_acquisitions` over a target grid, one RNG matrix.

    Every scalar call seeds ``SeedSequence([seed, n_attempts])`` and draws
    the *same* uniform and exponential matrices — only the comparison
    probability and delay scale differ per target.  So the batch draws the
    two matrices once (``rng.exponential(scale, size)`` is exactly
    ``standard_exponential(size) * scale`` at the same stream position)
    and broadcasts them against the per-target premiums; the per-attempt
    arithmetic is elementwise-identical IEEE ops, and the final masked
    means run per target on the identical selected values, so every stat
    matches the scalar loop bit for bit.
    """
    if n_attempts < 1:
        raise ValidationError("n_attempts must be >= 1",
                              context={"got": n_attempts, "valid": ">= 1"})
    premiums = acquisition_premium_batch(targets_mtops, year)
    with trace("acquisition.simulate_batch") as span:
        if span is not None:
            span.tags["targets"] = len(premiums)
            span.tags["n_attempts"] = n_attempts
        counter_inc("acquisition.simulate_batch_calls")
        max_tries = 3
        rng = np.random.default_rng(np.random.SeedSequence([seed, n_attempts]))
        uniforms = rng.random((n_attempts, max_tries))
        std_exp = rng.standard_exponential(size=(n_attempts, max_tries))
        feasible = [p for p in premiums if p.feasible]
        detection = np.array([p.detection_probability for p in feasible])
        base_delay = np.array([
            max(p.expected_delay_years, 1e-3) for p in feasible
        ])
        cost_mult = np.array([p.cost_multiplier for p in feasible])
        # (targets, attempts, tries) broadcasts; reductions over the tries
        # axis mirror the scalar per-attempt sums element for element.
        caught = uniforms[None, :, :] < detection[:, None, None]
        delays = base_delay[:, None, None] * std_exp[None, :, :]
        first_clear = np.argmax(~caught, axis=2)
        ever_clear = ~caught.all(axis=2)
        tries_used = np.where(ever_clear, first_clear + 1, max_tries)
        take = np.arange(max_tries)[None, None, :] < tries_used[:, :, None]
        total_delay = (delays * take).sum(axis=2)
        cost = cost_mult[:, None] * (1.0 + 0.25 * (tries_used - 1))
        out: list[AcquisitionStats] = []
        k = 0
        for premium in premiums:
            if not premium.feasible:
                out.append(AcquisitionStats(
                    target_mtops=premium.target_mtops, year=year,
                    n_attempts=n_attempts, success_rate=0.0,
                    interdiction_rate=1.0, mean_delay_years=float("inf"),
                    mean_cost_multiplier=float("inf"),
                ))
                continue
            clear_k = ever_clear[k]
            out.append(AcquisitionStats(
                target_mtops=premium.target_mtops,
                year=year,
                n_attempts=n_attempts,
                success_rate=float(np.mean(clear_k)),
                interdiction_rate=float(np.mean(caught[k, :, 0])),
                mean_delay_years=float(np.mean(total_delay[k][clear_k]))
                if clear_k.any() else float("inf"),
                mean_cost_multiplier=float(np.mean(cost[k][clear_k]))
                if clear_k.any() else float("inf"),
            ))
            k += 1
        return out


def clear_acquisition_caches() -> None:
    """Drop the memoized market scans (tests and ablation hygiene — the
    acquisition-side analogue of
    :func:`repro.ctp.batch.clear_credit_cache`)."""
    _market_at.cache_clear()


# Market scans are keyed by year and enumerate the catalog, so any
# machine append/amend stales them; threshold amendments cannot.
def _register_acquisition_hook() -> None:
    from repro.catalog.registry import register_invalidation_hook

    register_invalidation_hook(
        "diffusion.acquisition.market",
        lambda epoch: clear_acquisition_caches(),
        kinds=("append_machine", "amend_machine"),
    )


_register_acquisition_hook()
