"""Figure 3: Hypothetical Distribution of Applications and Computer
Installations.

The textbook version of the snapshot: the two distributions with lines A
(controllability) and D (most powerful available), plus candidate
thresholds B (reasonable) and C (unreasonable).  Regenerated from the
actual mid-1995 data rather than hypothetical curves — which is the
paper's own Figure 11 move — then the B/C logic is demonstrated.
"""

import numpy as np

from repro.core.threshold import ThresholdPolicy, select_threshold, snapshot
from repro.reporting.tables import render_table


def build_snapshot():
    return snapshot(1995.5)


def test_fig03_distributions(benchmark, emit):
    snap = benchmark(build_snapshot)
    centers = snap.bin_centers()
    keep = (snap.installed_counts > 0) | (snap.application_counts > 0)
    rows = [
        [f"{centers[i]:,.2f}", snap.installed_counts[i],
         int(snap.application_counts[i])]
        for i in np.nonzero(keep)[0]
    ]
    b_choice = select_threshold(1995.5, ThresholdPolicy.ECONOMIC)
    text = render_table(
        ["bin center (Mtops)", "installed units", "application minimums"],
        rows,
        title="Figure 3: installations vs application requirements, mid-1995",
    )
    lines = (
        f"\nline A (lower bound of controllability) = "
        f"{snap.line_a_mtops:,.0f} Mtops"
        f"\nline B (economic choice, above A, below the applications hump) = "
        f"{b_choice.threshold_mtops:,.0f} Mtops"
        f"\nline D (most powerful available) = {snap.line_d_mtops:,.0f} Mtops"
    )
    emit(text + lines)

    # Geometry: the installations hump is below line A; B sits in [A, D].
    peak = centers[np.argmax(snap.installed_counts)]
    assert peak < snap.line_a_mtops
    assert snap.line_a_mtops <= b_choice.threshold_mtops < snap.line_d_mtops
