"""Tests for the domain cost models behind Chapter 4's quoted numbers."""

import pytest

from repro.simulate.applications import (
    acoustic_campaign_days,
    aero_design_turnaround_hours,
    keysearch_required_mtops,
    keysearch_time_days,
    weather_required_mtops,
)


class TestWeatherModel:
    def test_120km_global_anchor(self):
        # Paper: "a typical global weather model with 120 km resolution can
        # be executed on a workstation with performance in the 200 Mtops
        # range".
        mtops = weather_required_mtops(120.0, forecast_hours=120.0,
                                       deadline_hours=12.0)
        assert 100.0 <= mtops <= 600.0

    def test_45km_tactical_anchor(self):
        # Paper: "typical tactical weather models with 45 km resolution
        # require computers rated in excess of 10,000".
        mtops = weather_required_mtops(45.0, forecast_hours=36.0,
                                       deadline_hours=2.0)
        assert 6_000.0 <= mtops <= 15_000.0

    def test_5km_theater_well_over_100k(self):
        mtops = weather_required_mtops(5.0, forecast_hours=240.0,
                                       deadline_hours=12.0, area_km2=1e7)
        assert mtops > 100_000.0

    def test_finer_resolution_costs_more(self):
        coarse = weather_required_mtops(100.0, 48.0, 4.0)
        fine = weather_required_mtops(50.0, 48.0, 4.0)
        assert fine > coarse * 4.0

    def test_tighter_deadline_costs_more(self):
        slow = weather_required_mtops(45.0, 36.0, 6.0)
        fast = weather_required_mtops(45.0, 36.0, 1.0)
        assert fast == pytest.approx(6.0 * slow)

    def test_smaller_area_costs_less(self):
        global_run = weather_required_mtops(45.0, 36.0, 2.0)
        theater = weather_required_mtops(45.0, 36.0, 2.0, area_km2=1e7)
        assert theater < global_run

    def test_validation(self):
        with pytest.raises(ValueError):
            weather_required_mtops(0.0, 36.0, 2.0)


class TestKeysearch:
    def test_export_grade_40_bit_at_frontier(self):
        # A 40-bit key falls in 24 h to a frontier-class (~4,000 Mtops)
        # aggregate — why crypto no longer justifies the threshold.
        mtops = keysearch_required_mtops(40, 24.0)
        assert 2_000.0 <= mtops <= 6_000.0

    def test_des_56_out_of_reach(self):
        mtops = keysearch_required_mtops(56, 24.0)
        assert mtops > 1e8  # no 1995 ensemble comes close

    def test_time_inverse_of_requirement(self):
        mtops = keysearch_required_mtops(40, 24.0)
        assert keysearch_time_days(40, mtops) == pytest.approx(1.0)

    def test_each_bit_doubles(self):
        assert keysearch_required_mtops(41) == pytest.approx(
            2.0 * keysearch_required_mtops(40)
        )

    def test_more_power_less_time(self):
        assert keysearch_time_days(40, 8_000.0) < keysearch_time_days(40, 4_000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            keysearch_required_mtops(0)
        with pytest.raises(ValueError):
            keysearch_time_days(40, 0.0)


class TestAcousticCampaign:
    def test_c916_baseline_about_three_years(self):
        # 15 h x 2,000 runs = 3.4 years of compute on the C916 itself.
        days = acoustic_campaign_days(21_125.0)
        assert days == pytest.approx(1_250.0)

    def test_frontier_machine_hopeless(self):
        # On a mid-1995 frontier machine the campaign takes >17 years —
        # the paper's "little chance" judgment.
        assert acoustic_campaign_days(4_100.0) > 17.0 * 365.0

    def test_scales_inversely(self):
        assert acoustic_campaign_days(10_000.0) == pytest.approx(
            2.0 * acoustic_campaign_days(20_000.0)
        )

    def test_runs_scale(self):
        assert acoustic_campaign_days(21_125.0, runs=1_000) == pytest.approx(625.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            acoustic_campaign_days(0.0)
        with pytest.raises(ValueError):
            acoustic_campaign_days(1_000.0, runs=0)


class TestAeroTurnaround:
    def test_f22_overnight_on_ymp(self):
        # One case is an overnight (~10 h) run on the 958-Mtops Y-MP/2.
        hours = aero_design_turnaround_hours(958.0)
        assert 8.0 <= hours <= 12.0

    def test_slower_machine_stretches_program(self):
        # On the 189-Mtops 3090 the same case takes days, not overnight —
        # "effective computational support could be provided by lesser
        # machines, although the project would take significantly longer".
        assert aero_design_turnaround_hours(189.0) > 2.0 * 24.0

    def test_validation(self):
        with pytest.raises(ValueError):
            aero_design_turnaround_hours(0.0)
