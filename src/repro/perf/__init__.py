"""Performance measurement for the batch evaluation layer.

The benchmark suite times the library's hot paths — batch CTP rating,
frontier queries over year grids, the Monte-Carlo sensitivity analyses,
the premise scans, and keysearch bit expansion — against seed-faithful
scalar reference implementations (:mod:`repro.perf.reference`), reporting
min-of-k wall times and speedups.  Run it with ``python -m repro bench``
or via :func:`repro.perf.workloads.run_benchmarks`.
"""

from repro.perf.harness import Timing, time_workload
from repro.perf.loadgen import (
    LoadgenResult,
    open_loop_run,
    rate_sweep,
    saturation_knee,
)
from repro.perf.workloads import BENCH_PATH, run_benchmarks

__all__ = [
    "Timing",
    "time_workload",
    "run_benchmarks",
    "BENCH_PATH",
    "LoadgenResult",
    "open_loop_run",
    "rate_sweep",
    "saturation_knee",
]
