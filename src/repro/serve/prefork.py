"""Pre-forked sharded serving: N worker processes, one port.

The single-process server batches well but is still one GIL: CPU-bound
endpoints (``/policy`` grid cells, ``/review``) serialize behind each
other no matter how many HTTP threads accept.  The classic fix is the
classic Unix shape — a parent that owns the listening address and a
flock of forked workers each running the *unchanged*
:class:`~repro.serve.server.ServiceEngine` + ``MicroBatcher`` stack:

* **socket sharing** — where the kernel supports ``SO_REUSEPORT``
  (Linux, modern BSDs), every worker binds its own listening socket to
  the same address and the kernel load-balances accepted connections
  across them (no thundering herd, no user-space dispatcher).  The
  parent holds a bound-but-not-listening placeholder so the port is
  reserved (and an ephemeral ``port=0`` resolves) before the first fork;
  a non-listening socket receives no connections.  Elsewhere, the parent
  binds and listens once and workers ``accept()`` on the inherited
  descriptor — noisier under load, identical semantics.
* **shared read-only state** — the parent loads a ``repro.store``
  snapshot (mmap-mode arrays) *before* forking, so every worker's
  columnar stores point at the same physical pages.  N workers cost one
  snapshot's RAM, and none of them ever rebuilds a column.
* **control plane** — each worker holds one end of a ``socketpair``;
  line-delimited JSON carries ``ready`` upward and
  ``healthz``/``metrics``/``shutdown`` downward.  Worker death is EOF;
  parent death is EOF the other way, and an orphaned worker shuts itself
  down rather than serving forever unsupervised.
* **graceful drain** — SIGTERM/SIGINT to the parent broadcasts shutdown;
  each worker stops accepting, drains its in-flight micro-batches
  bounded by ``config.drain_timeout``, and exits 0.  Workers still alive
  past the deadline (plus grace) are SIGKILLed so shutdown itself has a
  bound.

Responses are byte-identical to the single-process server's: workers
run the same engine over the same (snapshot-identical) stores, and every
endpoint's result depends only on its own request.
"""

from __future__ import annotations

import json
import os
import select
import signal
import socket
import threading
import time

from repro.obs.errors import SnapshotStaleError, ValidationError
from repro.serve.server import ServeConfig, ServeServer

__all__ = ["PreforkServer", "run_prefork_server", "reuseport_available"]

#: Extra seconds past ``drain_timeout`` before the parent escalates a
#: lagging worker from graceful shutdown to SIGKILL.
_KILL_GRACE_S = 2.0

#: Listen backlog per worker socket.
_BACKLOG = 128


def reuseport_available() -> bool:
    """Whether this kernel supports ``SO_REUSEPORT`` load balancing."""
    return hasattr(socket, "SO_REUSEPORT")


# ---------------------------------------------------------------------------
# Control-plane framing: one JSON object per line over a socketpair.
# ---------------------------------------------------------------------------


def _send_msg(sock: socket.socket, message: dict) -> None:
    sock.sendall(json.dumps(message).encode("utf-8") + b"\n")


class _LineReader:
    """Buffered line reads off a socket, safe under read timeouts (a
    timed-out read never drops partially received bytes)."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buffer = b""
        self.eof = False  # peer closed (or errored): no more messages ever

    def readline(self, timeout: float | None) -> bytes | None:
        """One complete line, or ``None`` on timeout/EOF (check
        :attr:`eof` to tell the two apart)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while b"\n" not in self._buffer:
            if self.eof:
                return None
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
            try:
                ready, _, _ = select.select([self._sock], [], [],
                                            remaining)
            except OSError:
                self.eof = True
                return None
            if not ready:
                return None
            try:
                chunk = self._sock.recv(65536)
            except OSError:
                chunk = b""
            if not chunk:
                self.eof = True
                return None
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line

    def read_msg(self, timeout: float | None) -> dict | None:
        """One JSON message; ``None`` on timeout, EOF, or junk."""
        line = self.readline(timeout)
        if not line:
            return None
        try:
            message = json.loads(line)
        except ValueError:
            return None
        return message if isinstance(message, dict) else None


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _worker_socket(host: str, port: int) -> socket.socket:
    """A worker's own SO_REUSEPORT listening socket."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    sock.listen(_BACKLOG)
    return sock

def _worker_main(
    config: ServeConfig,
    worker_id: int,
    control: socket.socket,
    bound_port: int,
    inherited: socket.socket | None,
) -> None:
    """Runs in the forked child; never returns (``os._exit``)."""
    server = None
    exit_code = 0
    stop = threading.Event()

    # A signalled worker drains exactly like a commanded one.  Handlers
    # only set the event: the actual close (which joins threads) happens
    # on the control loop below, never in signal context.
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())

    try:
        # A worker serving from a snapshot that no longer matches the
        # in-process catalog would answer from skewed data forever (or,
        # historically, crash-loop with no signal the parent could read).
        # Check before binding: the failure becomes one structured
        # control-plane message instead of N opaque exit codes.
        from repro.store import verify_active_snapshot

        verify_active_snapshot()
        if inherited is not None:
            listen = inherited
        else:
            listen = _worker_socket(config.host, bound_port)
        server = ServeServer(config, worker_id=worker_id,
                             listen_socket=listen)
        server.start()
        _send_msg(control, {"event": "ready", "worker_id": worker_id,
                            "pid": os.getpid(), "port": bound_port})

        reader = _LineReader(control)
        while not stop.is_set():
            message = reader.read_msg(timeout=0.1)
            if reader.eof:  # the parent died; do not serve orphaned
                break
            if message is None:
                continue
            cmd = message.get("cmd")
            if cmd == "healthz":
                _send_msg(control, server.engine.healthz())
            elif cmd == "metrics":
                _send_msg(control, server.engine.metrics())
            elif cmd == "shutdown":
                break
    except SnapshotStaleError as exc:
        # Surface the stale-snapshot state upward so the parent can fail
        # the whole fleet fast with a diagnosis instead of a crash loop.
        exit_code = 1
        try:
            _send_msg(control, {"event": "snapshot_stale",
                                "worker_id": worker_id,
                                "pid": os.getpid(),
                                "message": str(exc),
                                "context": exc.context})
        except OSError:
            pass
    except Exception:  # noqa: BLE001 — a worker must always exit cleanly
        exit_code = 1
    finally:
        try:
            if server is not None:
                # Stops accepting, then drains queued micro-batches
                # bounded by config.drain_timeout (ServiceEngine.close).
                server.close()
            try:
                _send_msg(control, {"event": "bye",
                                    "worker_id": worker_id})
            except OSError:
                pass
            control.close()
        finally:
            # Skip interpreter teardown: daemon HTTP threads may still
            # hold sockets, and the parent owns the lifecycle.
            os._exit(exit_code)


# ---------------------------------------------------------------------------
# Parent
# ---------------------------------------------------------------------------


class _Worker:
    """Parent-side record of one forked worker."""

    def __init__(self, worker_id: int, pid: int,
                 control: socket.socket) -> None:
        self.worker_id = worker_id
        self.pid = pid
        self.control = control
        self.reader = _LineReader(control)
        self.exit_code: int | None = None

    @property
    def alive(self) -> bool:
        return self.exit_code is None

    def request(self, cmd: str, timeout: float) -> dict | None:
        """One control-plane round trip; ``None`` if the worker is gone
        or silent past ``timeout``."""
        if not self.alive:
            return None
        try:
            _send_msg(self.control, {"cmd": cmd})
        except OSError:
            return None
        return self.reader.read_msg(timeout)


class PreforkServer:
    """Parent of a pre-forked worker fleet sharing one listening port.

    ``port=0`` binds an ephemeral port (tests); :attr:`port`/:attr:`url`
    report the shared address.  Usable as a context manager;
    :meth:`close` is idempotent, drains the fleet gracefully, and
    SIGKILLs stragglers after ``drain_timeout`` plus grace.

    Fork happens in :meth:`start`, before the parent spins up any
    thread, and after any ``repro.store`` snapshot has been loaded — so
    workers share the parent's read-only mmap pages instead of paging in
    their own copies.
    """

    def __init__(self, config: ServeConfig | None = None,
                 n_workers: int = 2) -> None:
        if n_workers < 1:
            raise ValidationError("n_workers must be >= 1",
                                  context={"got": n_workers,
                                           "valid": ">= 1"})
        self.config = config or ServeConfig()
        self.n_workers = n_workers
        self.mode = "reuseport" if reuseport_available() else "inherited"
        self.workers: list[_Worker] = []
        self._closed = False
        self._started = False

        # Reserve the address before forking.  In reuseport mode this
        # placeholder never listens — it exists to resolve port 0 and to
        # hold the port against other processes; the kernel only
        # balances across *listening* sockets, so it steals nothing.
        self._placeholder = socket.socket(socket.AF_INET,
                                          socket.SOCK_STREAM)
        if self.mode == "reuseport":
            self._placeholder.setsockopt(socket.SOL_SOCKET,
                                         socket.SO_REUSEPORT, 1)
            self._placeholder.bind((self.config.host, self.config.port))
        else:
            self._placeholder.setsockopt(socket.SOL_SOCKET,
                                         socket.SO_REUSEADDR, 1)
            self._placeholder.bind((self.config.host, self.config.port))
            self._placeholder.listen(_BACKLOG)

    @property
    def port(self) -> int:
        return self._placeholder.getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self, ready_timeout: float = 30.0) -> "PreforkServer":
        """Fork the fleet and wait until every worker accepts."""
        if self._started:
            return self
        self._started = True
        # Prime the tile planes in the parent before forking: the hot
        # agentic point-query region is built once (off the mmap
        # snapshot columns when one is active) and every worker inherits
        # the warm tiles through copy-on-write instead of each paying
        # the first-touch builds.
        from repro.tiles import prime_tile_plane

        prime_tile_plane()
        for worker_id in range(self.n_workers):
            parent_end, child_end = socket.socketpair()
            pid = os.fork()
            if pid == 0:
                parent_end.close()
                inherited = (self._placeholder
                             if self.mode == "inherited" else None)
                _worker_main(self.config, worker_id, child_end,
                             self.port, inherited)
                raise AssertionError("unreachable: worker exited")
            child_end.close()
            self.workers.append(_Worker(worker_id, pid, parent_end))
        deadline = time.monotonic() + ready_timeout
        for worker in self.workers:
            remaining = max(0.0, deadline - time.monotonic())
            message = worker.reader.read_msg(remaining)
            if message is not None \
                    and message.get("event") == "snapshot_stale":
                # One structured failure for the whole fleet — both
                # hashes, the epoch delta, and the rebuild command —
                # instead of N workers crash-looping in silence.
                context = dict(message.get("context") or {})
                snapshot_dir = context.get("path", ".repro-snapshot")
                self.close()
                raise SnapshotStaleError(
                    f"worker {worker.worker_id} refused to serve from a "
                    "stale snapshot; rebuild it with "
                    f"`repro snapshot --output {snapshot_dir}`",
                    context={"worker_id": worker.worker_id,
                             "pid": message.get("pid", worker.pid),
                             "snapshot_hash": context.get("got"),
                             "live_hash": context.get("valid"),
                             "epoch_delta": context.get("epoch_delta"),
                             "path": snapshot_dir,
                             "rebuild":
                                 f"repro snapshot --output {snapshot_dir}"},
                )
            if message is None or message.get("event") != "ready":
                self.close()
                raise ValidationError(
                    f"worker {worker.worker_id} failed to start",
                    context={"pid": worker.pid, "got": message,
                             "valid": '{"event": "ready"}'},
                )
        return self

    # -- fleet introspection (control-plane fan-out) ------------------------

    def _reap(self) -> None:
        for worker in self.workers:
            if not worker.alive:
                continue
            pid, status = os.waitpid(worker.pid, os.WNOHANG)
            if pid:
                worker.exit_code = (os.waitstatus_to_exitcode(status)
                                    if status >= 0 else status)

    def healthz(self, timeout: float = 5.0) -> dict:
        """Fleet health: per-worker ``healthz`` plus liveness roll-up."""
        self._reap()
        rows = []
        for worker in self.workers:
            body = worker.request("healthz", timeout)
            rows.append({
                "worker_id": worker.worker_id,
                "pid": worker.pid,
                "alive": worker.alive and body is not None,
                "healthz": body,
            })
        n_live = sum(1 for row in rows if row["alive"])
        return {
            "status": "ok" if n_live == self.n_workers else "degraded",
            "mode": self.mode,
            "port": self.port,
            "n_workers": self.n_workers,
            "n_live": n_live,
            "workers": rows,
        }

    def metrics(self, timeout: float = 5.0) -> dict:
        """Per-worker ``metrics`` bodies plus a fleet-level roll-up.

        Also surfaces ``snapshot_skew``: True when live workers disagree
        about which snapshot they serve from (deploy gone wrong).
        """
        self._reap()
        per_worker = {}
        hashes = set()
        requests_total = 0
        plan_totals = {"plans": 0, "ops_fused": 0, "cse_hits": 0,
                       "reuse_hits": 0}
        for worker in self.workers:
            body = worker.request("metrics", timeout)
            per_worker[str(worker.worker_id)] = body
            if body is not None:
                serve = body.get("serve", {})
                hashes.add(serve.get("snapshot_manifest_hash"))
                requests_total += int(
                    body.get("counters", {}).get("serve.requests", 0))
                worker_plan = serve.get("plan", {})
                for name in plan_totals:
                    plan_totals[name] += int(worker_plan.get(name, 0))
        return {
            "mode": self.mode,
            "n_workers": self.n_workers,
            "requests_total": requests_total,
            "plan": plan_totals,
            "snapshot_skew": len(hashes) > 1,
            "workers": per_worker,
        }

    # -- shutdown -----------------------------------------------------------

    def close(self) -> None:
        """Drain and stop the fleet (idempotent).

        Broadcast graceful shutdown (control message + SIGTERM), wait
        out ``drain_timeout`` plus grace, then SIGKILL anything left.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self.workers:
            if not worker.alive:
                continue
            try:
                _send_msg(worker.control, {"cmd": "shutdown"})
            except OSError:
                pass
            try:
                os.kill(worker.pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = (time.monotonic() + self.config.drain_timeout
                    + _KILL_GRACE_S)
        while time.monotonic() < deadline:
            self._reap()
            if all(not worker.alive for worker in self.workers):
                break
            time.sleep(0.02)
        for worker in self.workers:
            if worker.alive:
                try:
                    os.kill(worker.pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
                _, status = os.waitpid(worker.pid, 0)
                worker.exit_code = os.waitstatus_to_exitcode(status)
            worker.control.close()
        self._placeholder.close()

    def exit_codes(self) -> dict[int, int | None]:
        """``{worker_id: exit_code}`` (None while still running)."""
        self._reap()
        return {worker.worker_id: worker.exit_code
                for worker in self.workers}

    def __enter__(self) -> "PreforkServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()


def run_prefork_server(config: ServeConfig | None = None,
                       n_workers: int = 2) -> str:
    """Run a pre-forked fleet until SIGINT/SIGTERM; returns a shutdown
    message (the CLI entry point for ``repro serve --workers N``)."""
    server = PreforkServer(config, n_workers=n_workers)
    stop = threading.Event()

    def _on_signal(signum: int, frame: object) -> None:
        stop.set()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        previous[signum] = signal.signal(signum, _on_signal)
    try:
        server.start()
        print(f"repro serve listening on {server.url} "
              f"({server.n_workers} workers, {server.mode} sharding, "
              f"max_batch={server.config.max_batch}, "
              f"queue_limit={server.config.queue_limit})", flush=True)
        stop.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.close()
    codes = server.exit_codes()
    clean = sum(1 for code in codes.values() if code == 0)
    return (f"serve: {clean}/{server.n_workers} workers shut down "
            f"cleanly")
