"""Columnar view of the commercial catalog: one array per attribute.

The Chapter 5 policy grid asks the same questions of every machine at
every (threshold, year) point — introduced yet?  rated above the
threshold?  classified uncontrollable? — and the scalar code answered
them by re-walking ``COMMERCIAL_SYSTEMS`` and re-running ``assess`` per
point.  This module flattens the catalog once into frozen, read-only
numpy columns (catalog order preserved, so a boolean mask over a column
reconstructs the exact machine tuple a scalar scan would have built) and
every grid engine, batch dispatcher, and future caller reads the same
arrays.

One ``assess()`` per machine, ever: the controllability columns are
filled from the memoized assessment path, and the whole column set is
itself built lazily exactly once per process (``columns.machine_builds``
counts builds; ``columns.machine_hits`` counts reuse).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from types import MappingProxyType
from typing import Mapping

import numpy as np

from repro.catalog.registry import current_epoch, register_invalidation_hook
from repro.machines import catalog as _catalog
from repro.machines.catalog import max_config_mtops
from repro.machines.spec import MachineSpec
from repro.obs.trace import counter_inc, trace

__all__ = [
    "MachineColumns",
    "machine_columns",
    "machine_columns_from_arrays",
    "install_machine_columns",
    "clear_machine_columns",
    "machine_columns_info",
    "patched_machine_columns",
]


@dataclass(frozen=True)
class MachineColumns:
    """Frozen columnar mirror of ``COMMERCIAL_SYSTEMS`` (catalog order).

    Every array is read-only and indexed identically: row ``i`` describes
    ``machines[i]``, so ``machines[j] for j in np.flatnonzero(mask)``
    rebuilds the exact tuple a scalar catalog scan under the same
    predicate would return, in the same order.
    """

    machines: tuple[MachineSpec, ...]
    #: Introduction year of each family.
    intro_years: np.ndarray
    #: Entry-configuration CTP rating.
    entry_mtops: np.ndarray
    #: Maximum-configuration CTP rating (the control-relevant ceiling).
    max_config_mtops: np.ndarray
    #: Rating reachable by a field upgrader: max config when
    #: ``field_upgradable`` else the entry configuration — the Chapter 3
    #: loophole boundary shared by licensing and covert acquisition.
    reachable_mtops: np.ndarray
    #: True where the family is field-upgradable.
    field_upgradable: np.ndarray
    #: Cataloged installed units (NaN where the paper gives none).
    units_installed: np.ndarray
    #: Composite controllability index under the default weights.
    controllability_index: np.ndarray
    #: Integer classification codes (``repro.controllability.index``
    #: ordering: 0 uncontrollable, 1 marginal, 2 controllable).
    class_codes: np.ndarray
    #: True where the default-weights classification is UNCONTROLLABLE.
    uncontrollable: np.ndarray
    #: Catalog row by machine key, for O(1) request-to-column joins.
    index_by_key: Mapping[str, int] = field(compare=False)
    #: Catalog epoch the columns were built (or patched) under.
    epoch: int = field(default=0, compare=False)

    @property
    def size(self) -> int:
        return len(self.machines)


def _frozen(values: object, dtype: object = float) -> np.ndarray:
    out = np.asarray(values, dtype=dtype)
    out.setflags(write=False)
    return out


@lru_cache(maxsize=1)
def _build_columns() -> MachineColumns:
    from repro.controllability.index import _CLASS_CODES, assess

    counter_inc("columns.machine_builds")
    with trace("columns.machine_build") as span:
        machines = tuple(_catalog.COMMERCIAL_SYSTEMS)
        assessments = [assess(m) for m in machines]
        max_cfg = [max_config_mtops(m) for m in machines]
        reachable = [
            rating if m.field_upgradable else m.ctp_mtops
            for m, rating in zip(machines, max_cfg)
        ]
        codes = [_CLASS_CODES[a.classification] for a in assessments]
        if span is not None:
            span.tags["machines"] = len(machines)
        return MachineColumns(
            machines=machines,
            intro_years=_frozen([m.year for m in machines]),
            entry_mtops=_frozen([m.ctp_mtops for m in machines]),
            max_config_mtops=_frozen(max_cfg),
            reachable_mtops=_frozen(reachable),
            field_upgradable=_frozen(
                [m.field_upgradable for m in machines], dtype=bool),
            units_installed=_frozen(
                [np.nan if m.units_installed is None else m.units_installed
                 for m in machines]),
            controllability_index=_frozen([a.index for a in assessments]),
            class_codes=_frozen(codes, dtype=np.int8),
            uncontrollable=_frozen([c == 0 for c in codes], dtype=bool),
            index_by_key=MappingProxyType(
                {m.key: i for i, m in enumerate(machines)}),
            epoch=current_epoch(),
        )


# A column set installed from an on-disk snapshot (repro.store) takes
# precedence over the lazily-built one: loading it costs zero assess()
# calls, and forked serving workers share its mmap pages.
_INSTALLED: MachineColumns | None = None


def machine_columns() -> MachineColumns:
    """The columnar catalog: snapshot-installed if present, else built
    lazily (one build per process)."""
    if _INSTALLED is not None:
        counter_inc("columns.machine_hits")
        return _INSTALLED
    if _build_columns.cache_info().currsize:
        counter_inc("columns.machine_hits")
    return _build_columns()


def machine_columns_from_arrays(
    arrays: Mapping[str, np.ndarray],
) -> MachineColumns:
    """Assemble a :class:`MachineColumns` from precomputed arrays.

    The load-from-snapshot constructor: the machine tuple and key index
    are rebuilt from the import-time catalog (free), the numeric columns
    come from ``arrays`` untouched (typically read-only memmaps), and no
    ``assess()`` runs.  Array order must be catalog order — the snapshot
    manifest hash guarantees it.
    """
    machines = tuple(_catalog.COMMERCIAL_SYSTEMS)
    for name in ("intro_years", "entry_mtops", "max_config_mtops",
                 "reachable_mtops", "field_upgradable", "units_installed",
                 "controllability_index", "class_codes", "uncontrollable"):
        if name not in arrays or len(arrays[name]) != len(machines):
            from repro.obs.errors import ValidationError

            raise ValidationError(
                f"snapshot column {name!r} is missing or mis-sized",
                context={"column": name,
                         "got": len(arrays.get(name, ())),
                         "valid": len(machines)},
            )
    return MachineColumns(
        machines=machines,
        intro_years=arrays["intro_years"],
        entry_mtops=arrays["entry_mtops"],
        max_config_mtops=arrays["max_config_mtops"],
        reachable_mtops=arrays["reachable_mtops"],
        field_upgradable=arrays["field_upgradable"],
        units_installed=arrays["units_installed"],
        controllability_index=arrays["controllability_index"],
        class_codes=arrays["class_codes"],
        uncontrollable=arrays["uncontrollable"],
        index_by_key=MappingProxyType(
            {m.key: i for i, m in enumerate(machines)}),
        epoch=current_epoch(),
    )


def patched_machine_columns(
    base: MachineColumns,
    machine: MachineSpec,
    row: int,
    epoch: int,
) -> MachineColumns:
    """``base`` with exactly one row appended or overwritten.

    Row ``row == base.size`` appends (``append_machine``); a smaller row
    overwrites in place (``amend_machine``).  Only the touched machine is
    assessed — every other row is carried over byte-for-byte, which is
    what makes the patch bit-identical to a full rebuild (the rebuild
    recomputes those rows deterministically to the same values).
    """
    from repro.controllability.index import _CLASS_CODES, assess

    if not 0 <= row <= base.size:
        from repro.obs.errors import ValidationError

        raise ValidationError(
            f"patched row {row} outside columns of size {base.size}",
            context={"got": row, "valid": f"0..{base.size}"},
        )
    counter_inc("columns.machine_patches")
    assessment = assess(machine)
    max_cfg = max_config_mtops(machine)
    code = _CLASS_CODES[assessment.classification]
    values = {
        "intro_years": machine.year,
        "entry_mtops": machine.ctp_mtops,
        "max_config_mtops": max_cfg,
        "reachable_mtops": max_cfg if machine.field_upgradable
        else machine.ctp_mtops,
        "field_upgradable": machine.field_upgradable,
        "units_installed": np.nan if machine.units_installed is None
        else machine.units_installed,
        "controllability_index": assessment.index,
        "class_codes": code,
        "uncontrollable": code == 0,
    }

    def _patch(name: str) -> np.ndarray:
        column = np.asarray(getattr(base, name))
        cell = np.array([values[name]], dtype=column.dtype)
        if row == base.size:
            out = np.concatenate([column, cell])
        else:
            out = column.copy()
            out[row] = cell[0]
        out.setflags(write=False)
        return out

    if row == base.size:
        machines = base.machines + (machine,)
    else:
        entries = list(base.machines)
        entries[row] = machine
        machines = tuple(entries)
    return MachineColumns(
        machines=machines,
        intro_years=_patch("intro_years"),
        entry_mtops=_patch("entry_mtops"),
        max_config_mtops=_patch("max_config_mtops"),
        reachable_mtops=_patch("reachable_mtops"),
        field_upgradable=_patch("field_upgradable"),
        units_installed=_patch("units_installed"),
        controllability_index=_patch("controllability_index"),
        class_codes=_patch("class_codes"),
        uncontrollable=_patch("uncontrollable"),
        index_by_key=MappingProxyType(
            {m.key: i for i, m in enumerate(machines)}),
        epoch=epoch,
    )


def install_machine_columns(columns: MachineColumns) -> None:
    """Make ``columns`` the process-wide column set (snapshot load path)."""
    global _INSTALLED
    counter_inc("columns.machine_installs")
    _INSTALLED = columns


def clear_machine_columns() -> None:
    """Drop the cached column set (tests and ablation hygiene)."""
    global _INSTALLED
    _INSTALLED = None
    _build_columns.cache_clear()


# The clear hook is registered with the catalog invalidation registry, so
# `repro.catalog.invalidate_all` resets this store atomically with every
# other cache.  Event applies do NOT clear it — they install a patched
# column set instead (kinds=() keeps this off the precise per-event path).
register_invalidation_hook(
    "machines.columns", lambda epoch: clear_machine_columns())


def machine_columns_info() -> dict[str, int]:
    """Introspection for :func:`repro.obs.metrics_snapshot`."""
    from repro.obs.trace import counters

    stats = counters()
    return {
        "cached": int(_build_columns.cache_info().currsize),
        "installed": int(_INSTALLED is not None),
        "builds": int(stats.get("columns.machine_builds", 0)),
        "installs": int(stats.get("columns.machine_installs", 0)),
        "hits": int(stats.get("columns.machine_hits", 0)),
    }
