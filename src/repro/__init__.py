"""repro — reproduction of Goodman, Wolcott & Burkhart (1995),
*Building on the Basics: An Examination of High-Performance Computing
Export Control Policy in the 1990s* (CISAC, Stanford).

The library implements the paper's analytical framework end-to-end:

* :mod:`repro.ctp` — the CTP/Mtops performance metric;
* :mod:`repro.machines` — the reconstructed 1976-1997 machine catalog
  (U.S./Japanese commercial systems; Russian, Chinese, Indian indigenous
  systems);
* :mod:`repro.apps` — national-security applications, their minimum
  computational requirements, and the synthetic HPCMO database;
* :mod:`repro.controllability` — the factor model, Table 4
  classifications, and the uncontrollability frontier;
* :mod:`repro.trends` — technology trend fitting (micros, SMPs, foreign
  systems, Top500);
* :mod:`repro.simulate` — the parallel-architecture performance simulator
  behind the cluster-vs-integrated analysis;
* :mod:`repro.market` / :mod:`repro.diffusion` — the economic and
  policy-mechanics substrates;
* :mod:`repro.core` — premises, bounds, threshold selection, scenarios,
  and the annual review.

Quickstart::

    from repro import run_annual_review
    review = run_annual_review(1995.5)
    print(review.bounds.lower_mtops)          # ~4,100 (paper: 4,000-5,000)
    print(review.premises.all_hold)           # True (the 1995 verdict)
"""

from repro.core import (
    derive_bounds,
    evaluate_premises,
    headline_summary,
    run_annual_review,
    select_threshold,
    snapshot,
)
from repro.core.threshold import ThresholdPolicy
from repro.ctp import Coupling, ComputingElement, ctp, ctp_homogeneous
from repro.machines import COMMERCIAL_SYSTEMS, FOREIGN_SYSTEMS, MachineSpec
from repro.obs import (
    CatalogLookupError,
    ReproError,
    ThresholdInfeasibleError,
    TrendFitError,
    ValidationError,
    metrics_snapshot,
    profile,
    trace,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "ValidationError",
    "CatalogLookupError",
    "ThresholdInfeasibleError",
    "TrendFitError",
    "trace",
    "profile",
    "metrics_snapshot",
    "derive_bounds",
    "evaluate_premises",
    "headline_summary",
    "run_annual_review",
    "select_threshold",
    "snapshot",
    "ThresholdPolicy",
    "Coupling",
    "ComputingElement",
    "ctp",
    "ctp_homogeneous",
    "COMMERCIAL_SYSTEMS",
    "FOREIGN_SYSTEMS",
    "MachineSpec",
]
