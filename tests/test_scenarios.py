"""The scenario subsystem's contract: codec strictness, historical
bit-exactness, epoch discipline, and the serve/CLI surfaces.

The load-bearing properties:

* the historical-identity world's tensor slice equals the existing
  ``PolicyGrid`` bit for bit on every cell (asserted directly and as a
  hypothesis property over random axes);
* the wire codec is strict (unknown fields rejected at every nesting
  level, era/anchor ordering validated) and round-trips exactly;
* a catalog event can never interleave with a tensor build (the write
  guard queues behind the build) nor be read across (every accessor
  raises ``ScenarioEpochError`` after an epoch change), and
  ``reset_catalog()``'s invalidate-all sweep clears the scenario caches.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.events import apply_event, parse_event, reset_catalog
from repro.catalog.registry import catalog_epoch_info, current_epoch
from repro.diffusion.policy import THRESHOLD_HISTORY, ThresholdEra, \
    evaluate_policy, threshold_at
from repro.diffusion.policy_grid import evaluate_policy_grid
from repro.obs.errors import (
    ScenarioEpochError,
    ThresholdInfeasibleError,
    ValidationError,
)
from repro.scenarios import (
    HISTORICAL,
    PRESETS,
    Scenario,
    accelerated_foreign,
    clear_scenario_caches,
    early_decontrol,
    evaluate_scenario_grid,
    flop_cap,
    preset_scenario,
    scenario_from_payload,
    scenario_to_payload,
    sticky_requirements,
)
from repro.scenarios import grid as scenario_grid_module
from repro.serve.server import ServeConfig, ServiceEngine


@pytest.fixture(autouse=True)
def _restore_catalog():
    """Every test leaves the baseline catalog, epoch 0, and cold
    scenario caches."""
    yield
    reset_catalog()


THRESHOLDS = [100.0, 195.0, 1500.0, 7000.0]
YEARS = [1988.0, 1991.0, 1994.0, 1996.0, 1998.0]


def _all_presets() -> list[Scenario]:
    return [constructor() for constructor in PRESETS.values()]


# ---------------------------------------------------------------------------
# Scenario spec and codec
# ---------------------------------------------------------------------------


class TestScenarioSpec:
    def test_historical_identity_flag(self):
        assert HISTORICAL.is_historical
        assert not flop_cap().is_historical
        assert not sticky_requirements().is_historical

    def test_scenarios_are_frozen_and_hashable(self):
        worlds = _all_presets()
        assert len({hash(w) for w in worlds}) == len(worlds)
        with pytest.raises(Exception):
            HISTORICAL.name = "other"  # type: ignore[misc]

    def test_preset_scenario_unknown_name(self):
        with pytest.raises(ValidationError) as excinfo:
            preset_scenario("warp_drive")
        assert "flop_cap" in str(excinfo.value.context["valid"])

    def test_historical_threshold_in_force_matches_threshold_at(self):
        for year in (1984.5, 1986.0, 1988.9, 1992.0, 1994.1, 1999.0):
            assert HISTORICAL.threshold_in_force(year) == threshold_at(year)
        with pytest.raises(ThresholdInfeasibleError):
            HISTORICAL.threshold_in_force(1980.0)

    def test_threshold_in_force_series_zero_before_first_era(self):
        series = HISTORICAL.threshold_in_force_series([1980.0, 1985.0,
                                                       1995.0])
        assert series[0] == 0.0
        assert series[1] == threshold_at(1985.0)
        assert series[2] == threshold_at(1995.0)

    def test_decontrol_requires_strictly_increasing_eras(self):
        eras = (ThresholdEra(1990.0, 100.0, "a"),
                ThresholdEra(1990.0, 200.0, "b"))
        with pytest.raises(ValidationError):
            Scenario(name="bad", decontrol=eras)

    def test_decontrol_rejects_nonpositive_threshold(self):
        with pytest.raises(ValidationError):
            Scenario(name="bad",
                     decontrol=(ThresholdEra(1990.0, 0.0, "a"),))

    def test_frontier_shock_rejects_bad_anchors(self):
        with pytest.raises(ValidationError):
            Scenario(name="bad", frontier_shock=((1992.0, -1.0),))
        with pytest.raises(ValidationError):
            Scenario(name="bad",
                     frontier_shock=((1994.0, 2.0), (1992.0, 3.0)))

    def test_drift_knobs_validate_as_fractions(self):
        with pytest.raises(ValidationError):
            Scenario(name="bad", drift_rate=1.5)
        with pytest.raises(ValidationError):
            Scenario(name="bad", drift_floor=0.0)
        assert Scenario(name="ok", drift_rate=0.0).drift_rate == 0.0

    def test_frontier_multipliers_step_function(self):
        scenario = accelerated_foreign(factor=2.0, onset=1992.0)
        mult = scenario.frontier_multipliers([1990.0, 1992.0, 1995.0])
        assert list(mult) == [1.0, 2.0, 2.0]
        assert list(HISTORICAL.frontier_multipliers([1990.0])) == [1.0]


class TestScenarioCodec:
    def test_round_trip_identity_every_preset(self):
        for scenario in _all_presets():
            payload = scenario_to_payload(scenario)
            # The payload must survive a real JSON round trip too.
            assert scenario_from_payload(
                json.loads(json.dumps(payload))) == scenario

    def test_round_trip_identity_custom(self):
        scenario = Scenario(
            name="custom",
            decontrol=(ThresholdEra(1990.0, 500.0, "era"),),
            frontier_shock=((1991.0, 1.5), (1993.0, 2.25)),
            drift_rate=0.12,
            drift_floor=0.4,
        )
        assert scenario_from_payload(
            scenario_to_payload(scenario)) == scenario

    def test_payload_omits_none_knobs(self):
        assert scenario_to_payload(HISTORICAL) == {"name": "historical"}
        assert "drift_floor" not in scenario_to_payload(flop_cap())

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(ValidationError) as excinfo:
            scenario_from_payload({"name": "x", "drift_rte": 0.1})
        assert "drift_rte" in str(excinfo.value)

    def test_unknown_nested_era_field_rejected(self):
        payload = {"name": "x", "decontrol": [
            {"start_year": 1990.0, "threshold_mtops": 100.0,
             "lable": "typo"}]}
        with pytest.raises(ValidationError) as excinfo:
            scenario_from_payload(payload)
        assert "lable" in str(excinfo.value)

    def test_bad_era_ordering_rejected(self):
        payload = {"name": "x", "decontrol": [
            {"start_year": 1994.0, "threshold_mtops": 100.0},
            {"start_year": 1990.0, "threshold_mtops": 200.0}]}
        with pytest.raises(ValidationError):
            scenario_from_payload(payload)

    def test_malformed_shapes_rejected(self):
        for payload in (
            "historical",
            {"decontrol": []},                       # name missing
            {"name": 7},
            {"name": "x", "decontrol": "soon"},
            {"name": "x", "frontier_shock": [[1992.0]]},
            {"name": "x", "frontier_shock": [[1992.0, "2"]]},
            {"name": "x", "drift_rate": True},
        ):
            with pytest.raises(ValidationError):
                scenario_from_payload(payload)


# ---------------------------------------------------------------------------
# Tensor engine: historical identity and overlays
# ---------------------------------------------------------------------------


class TestScenarioGridIdentity:
    def test_historical_slice_bit_exact_vs_policy_grid(self):
        worlds = [HISTORICAL, flop_cap(), accelerated_foreign()]
        tensor = evaluate_scenario_grid(worlds, THRESHOLDS, YEARS)
        grid = evaluate_policy_grid(THRESHOLDS, YEARS)
        assert np.array_equal(tensor.frontier_mtops[0], grid.frontier_mtops)
        assert np.array_equal(tensor.requirements[0], grid.requirements)
        assert np.array_equal(tensor.protected_counts[0],
                              grid.protected_counts)
        assert np.array_equal(tensor.illusory_counts[0],
                              grid.illusory_counts)
        assert np.array_equal(tensor.burden_units[0], grid.burden_units)
        assert np.array_equal(tensor.uncontrollable_counts[0],
                              grid.uncontrollable_counts)
        assert np.array_equal(tensor.credible[0], grid.credible)
        for i in range(len(THRESHOLDS)):
            for j in range(len(YEARS)):
                assert tensor.result_at(0, i, j) == grid.result_at(i, j)

    def test_historical_cells_equal_scalar_evaluator(self):
        tensor = evaluate_scenario_grid([HISTORICAL], THRESHOLDS, YEARS)
        for i, t in enumerate(THRESHOLDS):
            for j, y in enumerate(YEARS):
                assert tensor.result_at(0, i, j) == evaluate_policy(t, y)

    @settings(max_examples=15, deadline=None)
    @given(
        thresholds=st.lists(
            st.floats(min_value=10.0, max_value=60_000.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=6, unique=True),
        years=st.lists(
            st.floats(min_value=1985.0, max_value=2004.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=5, unique=True),
    )
    def test_historical_identity_property(self, thresholds, years):
        tensor = evaluate_scenario_grid([HISTORICAL], thresholds, years)
        grid = evaluate_policy_grid(thresholds, years)
        for name, other in (
            ("frontier_mtops", grid.frontier_mtops),
            ("requirements", grid.requirements),
            ("protected_counts", grid.protected_counts),
            ("illusory_counts", grid.illusory_counts),
            ("burden_units", grid.burden_units),
            ("uncontrollable_counts", grid.uncontrollable_counts),
            ("credible", grid.credible),
        ):
            assert np.array_equal(getattr(tensor, name)[0], other), name

    def test_as_policy_grid_round_trip(self):
        tensor = evaluate_scenario_grid([HISTORICAL, flop_cap()],
                                        THRESHOLDS, YEARS)
        grid = evaluate_policy_grid(THRESHOLDS, YEARS)
        world0 = tensor.as_policy_grid(0)
        assert np.array_equal(world0.burden_units, grid.burden_units)
        assert world0.result_at(1, 2) == grid.result_at(1, 2)
        world1 = tensor.as_policy_grid(1)
        assert world1.result_at(1, 2) == tensor.result_at(1, 1, 2)


class TestScenarioGridOverlays:
    def test_frontier_shock_scales_frontier_only(self):
        tensor = evaluate_scenario_grid(
            [HISTORICAL, accelerated_foreign(factor=2.0, onset=1990.0)],
            THRESHOLDS, YEARS)
        j = YEARS.index(1994.0)
        assert tensor.frontier_mtops[1, j] == \
            2.0 * tensor.frontier_mtops[0, j]
        # Requirements and uncontrollable counts are untouched by the
        # shock (no knob patches the machine catalog or the drift).
        assert np.array_equal(tensor.requirements[1],
                              tensor.requirements[0])
        assert np.array_equal(tensor.uncontrollable_counts[1],
                              tensor.uncontrollable_counts[0])

    def test_sticky_requirements_never_drift(self):
        tensor = evaluate_scenario_grid(
            [HISTORICAL, sticky_requirements()], THRESHOLDS, YEARS)
        # drift_rate=0: every year's requirement equals the base minimum.
        assert np.all(tensor.requirements[1]
                      == tensor.requirements[1][:, :1])
        # The paper's 8%/year drift strictly lowers late-year minimums.
        assert np.all(tensor.requirements[0][:, -1]
                      <= tensor.requirements[1][:, -1])

    def test_early_decontrol_shifts_in_force_series(self):
        tensor = evaluate_scenario_grid(
            [HISTORICAL, early_decontrol(years_early=2.0)],
            THRESHOLDS, [1986.0, 1990.0, 1993.0])
        for j, year in enumerate((1986.0, 1990.0, 1993.0)):
            assert tensor.in_force_mtops[1, j] == threshold_at(year + 2.0)

    def test_flop_cap_preserves_history_before_start(self):
        scenario = flop_cap(cap_mtops=10_000.0, start_year=1994.1)
        assert scenario.threshold_in_force(1992.0) == threshold_at(1992.0)
        assert scenario.threshold_in_force(1995.0) == 10_000.0
        assert scenario.decontrol[:-1] == tuple(
            e for e in THRESHOLD_HISTORY if e.start_year < 1994.1)

    def test_worker_fanout_bit_identical(self):
        worlds = _all_presets()
        serial = evaluate_scenario_grid(worlds, THRESHOLDS, YEARS)
        clear_scenario_caches()
        fanned = evaluate_scenario_grid(worlds, THRESHOLDS, YEARS,
                                        max_workers=2)
        for name in ("frontier_mtops", "requirements", "protected_counts",
                     "illusory_counts", "burden_units",
                     "uncontrollable_counts", "credible", "in_force_mtops",
                     "in_force_credible"):
            assert np.array_equal(getattr(serial, name),
                                  getattr(fanned, name)), name

    def test_validation_rejects_bad_inputs(self):
        with pytest.raises(ValidationError):
            evaluate_scenario_grid([], THRESHOLDS, YEARS)
        with pytest.raises(ValidationError):
            evaluate_scenario_grid([HISTORICAL, HISTORICAL],
                                   THRESHOLDS, YEARS)
        with pytest.raises(ValidationError):
            evaluate_scenario_grid(["historical"], THRESHOLDS, YEARS)

    def test_world_index_by_name_and_value(self):
        tensor = evaluate_scenario_grid([HISTORICAL, flop_cap()],
                                        THRESHOLDS, YEARS)
        assert tensor.world_index("flop_cap") == 1
        assert tensor.world_index(HISTORICAL) == 0
        with pytest.raises(ValidationError):
            tensor.world_index("missing")

    def test_divergence_and_credibility_summaries(self):
        tensor = evaluate_scenario_grid(
            [HISTORICAL, accelerated_foreign(factor=2.0, onset=1991.0)],
            THRESHOLDS, YEARS)
        # Identical before onset, shocked after: divergence at the first
        # grid year >= onset.
        assert tensor.divergence_year(1) == 1991.0
        assert tensor.divergence_year(1, baseline=1) is None
        loss = tensor.credibility_loss_year(0)
        assert loss is None or loss in YEARS
        assert tensor.burden_delta(0) == 0.0


# ---------------------------------------------------------------------------
# Epoch discipline
# ---------------------------------------------------------------------------


class TestEpochDiscipline:
    def test_reads_raise_after_catalog_event(self):
        tensor = evaluate_scenario_grid([HISTORICAL, flop_cap()],
                                        THRESHOLDS, YEARS)
        assert tensor.epoch == 0
        tensor.result_at(0, 0, 0)  # fine at the build epoch
        apply_event(parse_event({"event": "amend_threshold",
                                 "start_year": 1994.1,
                                 "threshold_mtops": 2_000.0}))
        assert current_epoch() == 1
        with pytest.raises(ScenarioEpochError) as excinfo:
            tensor.result_at(0, 0, 0)
        assert excinfo.value.context == {"built_at": 0, "current": 1}
        for reader in (lambda: tensor.as_policy_grid(0),
                       lambda: tensor.divergence_year(1),
                       lambda: tensor.credibility_loss_year(0),
                       lambda: tensor.burden_delta(1),
                       lambda: tensor.world_index("flop_cap")):
            with pytest.raises(ScenarioEpochError):
                reader()

    def test_rebuild_after_event_reads_cleanly(self):
        evaluate_scenario_grid([HISTORICAL], THRESHOLDS, YEARS)
        apply_event(parse_event({"event": "amend_threshold",
                                 "start_year": 1994.1,
                                 "threshold_mtops": 2_000.0}))
        rebuilt = evaluate_scenario_grid([HISTORICAL], THRESHOLDS, YEARS)
        assert rebuilt.epoch == 1
        # The historical world reads the *amended* timeline.
        j = YEARS.index(1996.0)
        assert rebuilt.in_force_mtops[0, j] == 2_000.0
        rebuilt.result_at(0, 0, 0)

    def test_mid_build_amendment_cannot_interleave(self, monkeypatch):
        """An ``amend_threshold`` posted mid-build queues behind the read
        guard: the tensor completes against its admission epoch (never a
        mixed-epoch tensor), and only *subsequent* reads raise."""
        build_entered = threading.Event()
        release_build = threading.Event()
        original = scenario_grid_module._world_slab

        def gated_world_slab(*args):
            build_entered.set()
            assert release_build.wait(5.0), "test deadlock"
            return original(*args)

        monkeypatch.setattr(scenario_grid_module, "_world_slab",
                            gated_world_slab)
        result: dict = {}

        def build():
            result["grid"] = evaluate_scenario_grid(
                [HISTORICAL, flop_cap()], THRESHOLDS, YEARS)

        builder = threading.Thread(target=build)
        builder.start()
        assert build_entered.wait(5.0)

        writer = threading.Thread(target=lambda: apply_event(parse_event(
            {"event": "amend_threshold", "start_year": 1994.1,
             "threshold_mtops": 3_000.0})))
        writer.start()
        writer.join(0.2)
        # The event is queued behind the in-flight build, not applied.
        assert writer.is_alive()
        assert current_epoch() == 0

        release_build.set()
        builder.join(10.0)
        writer.join(10.0)
        assert not builder.is_alive() and not writer.is_alive()

        grid = result["grid"]
        # The whole tensor was computed under the admission epoch...
        assert grid.epoch == 0
        assert current_epoch() == 1
        # ...and reading it now is an explicit typed error, not a silent
        # mix of pre- and post-amendment worlds.
        with pytest.raises(ScenarioEpochError):
            grid.result_at(0, 0, 0)


class TestCacheInvalidation:
    def test_scenarios_hook_registered_for_all_event_kinds(self):
        hooks = catalog_epoch_info()["hooks"]
        assert hooks["scenarios"] == ("amend_machine", "amend_threshold",
                                      "append_machine")

    def test_reset_catalog_sweeps_scenario_caches(self):
        evaluate_scenario_grid(
            [HISTORICAL, sticky_requirements()], THRESHOLDS, YEARS)
        assert scenario_grid_module._GRID_CACHE
        assert scenario_grid_module._DRIFT_MATRICES
        reset_catalog()
        assert not scenario_grid_module._GRID_CACHE
        assert not scenario_grid_module._DRIFT_MATRICES

    def test_event_purges_cached_tensors(self):
        tensor = evaluate_scenario_grid([HISTORICAL], THRESHOLDS, YEARS)
        cached = evaluate_scenario_grid([HISTORICAL], THRESHOLDS, YEARS)
        assert cached is tensor  # warm hit at the same epoch
        apply_event(parse_event({"event": "amend_threshold",
                                 "start_year": 1994.1,
                                 "threshold_mtops": 2_500.0}))
        assert not scenario_grid_module._GRID_CACHE
        rebuilt = evaluate_scenario_grid([HISTORICAL], THRESHOLDS, YEARS)
        assert rebuilt is not tensor
        assert rebuilt.epoch == 1


# ---------------------------------------------------------------------------
# Serving surface
# ---------------------------------------------------------------------------


def _scenario_payloads() -> list[dict]:
    return [
        {"scenario": "historical", "year": 1995.5},
        {"year": 1995.5},  # defaults to the historical world
        {"scenario": "flop_cap", "year": 1995.5},
        {"scenario": "flop_cap", "threshold_mtops": 7_000.0,
         "year": 1996.0},
        {"scenario": "accelerated_foreign", "year": 1992.0},
        {"scenario": scenario_to_payload(sticky_requirements()),
         "threshold_mtops": 195.0, "year": 1994.0},
        {"scenario": {"name": "custom", "drift_rate": 0.2},
         "year": 1995.0},
    ]


class TestServeScenario:
    def test_coalesced_matches_sequential_byte_for_byte(self):
        payloads = _scenario_payloads() * 3
        reference = ServiceEngine(ServeConfig(max_batch=1, cache_size=0))
        try:
            expected = [reference.handle("scenario", p) for p in payloads]
        finally:
            reference.close()
        engine = ServiceEngine(ServeConfig(max_batch=64, cache_size=0))
        try:
            with ThreadPoolExecutor(max_workers=8) as pool:
                got = list(pool.map(
                    lambda p: engine.handle("scenario", p), payloads))
        finally:
            engine.close()
        for (status_a, body_a), (status_b, body_b) in zip(expected, got):
            assert status_a == status_b == 200
            assert json.dumps(body_a, sort_keys=True) == \
                json.dumps(body_b, sort_keys=True)

    def test_response_shape_and_world_echo(self):
        engine = ServiceEngine(ServeConfig(max_batch=1))
        try:
            status, body = engine.handle(
                "scenario", {"scenario": "flop_cap", "year": 1995.0})
        finally:
            engine.close()
        assert status == 200
        assert body["endpoint"] == "scenario"
        assert body["scenario"] == "flop_cap"
        assert body["historical"] is False
        assert body["world"]["name"] == "flop_cap"
        assert body["threshold_mtops"] == 10_000.0  # the world's cap
        assert body["threshold_in_force_mtops"] == 10_000.0
        assert isinstance(body["credible"], bool)
        assert isinstance(body["in_force_credible"], bool)

    def test_omitted_threshold_resolves_per_world(self):
        engine = ServiceEngine(ServeConfig(max_batch=1))
        try:
            _, historical = engine.handle("scenario", {"year": 1995.0})
            _, early = engine.handle(
                "scenario",
                {"scenario": "early_decontrol", "year": 1995.0})
        finally:
            engine.close()
        assert historical["threshold_mtops"] == threshold_at(1995.0)
        assert early["threshold_mtops"] == threshold_at(1997.0)

    def test_bad_payloads_return_400(self):
        engine = ServiceEngine(ServeConfig(max_batch=1))
        try:
            for payload in (
                {"scenario": "warp_drive"},
                {"scenario": {"name": "x", "bogus": 1}},
                {"scenario": "historical", "threshold_mtops": -5.0},
                {"scenario": "historical", "year": 1800.0},
                {"extra": 1},
                [],
            ):
                status, body = engine.handle("scenario", payload)
                assert status == 400, payload
                assert body["error"]["type"] == "ValidationError"
        finally:
            engine.close()

    def test_http_round_trip(self):
        from repro.serve.client import ServeClient
        from repro.serve.server import ServeServer

        with ServeServer(ServeConfig(port=0)) as server:
            client = ServeClient(port=server.port)
            try:
                body = client.scenario(scenario="flop_cap",
                                       year=1995.5).require_ok()
                assert body["scenario"] == "flop_cap"
                health = client.healthz().require_ok()
                assert "scenario" in health["endpoints"]
            finally:
                client.close()


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestScenariosCli:
    def test_scenarios_table(self, capsys):
        from repro.cli import main

        assert main(["scenarios", "--thresholds", "195,7000",
                     "--years", "1992,1996"]) == 0
        out = capsys.readouterr().out
        assert "World comparison" in out
        assert "flop_cap" in out
        assert "baseline" in out
        assert "tensor cells" in out

    def test_scenarios_worlds_json(self, tmp_path, capsys):
        from repro.cli import main

        worlds = tmp_path / "worlds.json"
        worlds.write_text(json.dumps(
            {"name": "frozen_drift", "drift_rate": 0.0}))
        assert main(["scenarios", "--worlds", "historical",
                     "--worlds-json", str(worlds),
                     "--thresholds", "195", "--years", "1994"]) == 0
        out = capsys.readouterr().out
        assert "frozen_drift" in out

    def test_scenarios_bad_flags_exit_nonzero(self, capsys):
        from repro.cli import main

        assert main(["scenarios", "--worlds", "warp_drive"]) == 1
        assert "error:" in capsys.readouterr().out
        assert main(["scenarios", "--max-workers", "0"]) == 1
