"""Job-mix throughput: the *other* way clusters replace supercomputers.

Note 52: the rationale for a supercomputer was often "not just improved
performance on individual applications, but the time and cost savings
possible when an organization has many applications to execute"; the low
cost per Mflops of workstations made clusters attractive "for such
high-volume computing environments".  Chapter 3: "Clusters have been used
with excellent results primarily when used to improve system through-put."

The model: a mix of *independent* jobs (no inter-job communication — this
is throughput, not speedup).  Each job runs on one node (clusters) or one
processor-share (shared machines), so granularity is irrelevant and the
cluster's weakness disappears; what matters is aggregate sustained rate,
memory per slot, and dollars.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import check_positive
from repro.simulate.architectures import MachineModel

__all__ = ["JobMix", "ThroughputResult", "throughput", "cost_per_job_rate"]


@dataclass(frozen=True)
class JobMix:
    """A stream of identical independent jobs."""

    name: str
    job_mops: float
    job_memory_mb: float

    def __post_init__(self) -> None:
        check_positive(self.job_mops, f"{self.name}: job_mops")
        check_positive(self.job_memory_mb, f"{self.name}: job_memory_mb")


@dataclass(frozen=True)
class ThroughputResult:
    """Sustained job throughput of one machine on one mix."""

    mix: JobMix
    machine: MachineModel
    runnable: bool
    jobs_per_day: float

    @property
    def reason(self) -> str | None:
        if self.runnable:
            return None
        return (f"job needs {self.mix.job_memory_mb:.0f} MB; a "
                f"{'processor share' if self.machine.shared_memory else 'node'}"
                f" cannot hold it")


def throughput(mix: JobMix, machine: MachineModel) -> ThroughputResult:
    """Jobs per day the machine sustains on the mix.

    Jobs are scheduled one per node (distributed machines) or packed into
    the shared pool (shared-memory machines, limited by memory slots).
    No communication, no Amdahl term: this is the workload class where
    "completely independent processes are farmed out ... in a manner that
    balances the load".
    """
    if machine.shared_memory:
        memory_slots = int(machine.total_memory_mb // mix.job_memory_mb)
        slots = min(machine.n_nodes, memory_slots)
    else:
        fits = machine.node_memory_mb >= mix.job_memory_mb
        slots = machine.n_nodes if fits else 0
    if slots < 1:
        return ThroughputResult(mix=mix, machine=machine, runnable=False,
                                jobs_per_day=0.0)
    seconds_per_job = mix.job_mops / machine.node_mops_per_s
    per_day = slots * 86_400.0 / seconds_per_job
    return ThroughputResult(mix=mix, machine=machine, runnable=True,
                            jobs_per_day=per_day)


def cost_per_job_rate(
    result: ThroughputResult,
    machine_price_usd: float,
) -> float:
    """Dollars per (job/day) of sustained throughput.

    The note 52 economics: divide the purchase price by the delivered
    throughput.  Infinite when the machine cannot run the mix.
    """
    check_positive(machine_price_usd, "machine_price_usd")
    if not result.runnable or result.jobs_per_day == 0.0:
        return float("inf")
    return machine_price_usd / result.jobs_per_day
