"""Individual controllability factor scores.

Each factor maps a product attribute onto [0, 1], where 1 means the
attribute makes the product easy to track, monitor, and regulate, and 0
means it defeats tracking as a practical matter.  Anchor values come from
Chapter 3's discussion:

* "It is easy to know the location of a dozen units.  It is virtually
  impossible to know the location of tens of thousands" — the units score
  interpolates in log space between 12 and 20,000 installations.
* "approximately half a million dollars represents a crucial marketing
  threshold"; systems in the $100-200K range enjoy still larger markets —
  the price score rises from 0.1 at $100K to 1.0 at $1M.
* Machine-room systems need "liquid cooling systems, special-purpose power
  supplies" — the size score steps with footprint class.
* Field upgrades "without the involvement of a trained vendor
  representative" undercut the vendor's eyes and ears — the scalability
  score falls with the headroom between entry and maximum configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_non_negative
from repro.machines.spec import DistributionChannel, MachineSpec, SizeClass

__all__ = [
    "size_score",
    "units_score",
    "channel_score",
    "price_score",
    "scalability_score",
    "age_score",
    "FactorScores",
]

_SIZE_SCORES = {
    SizeClass.ROOM: 1.0,
    SizeClass.RACK: 0.6,
    SizeClass.DESKSIDE: 0.3,
    SizeClass.DESKTOP: 0.1,
}

_CHANNEL_SCORES = {
    DistributionChannel.DIRECT: 1.0,
    DistributionChannel.MIXED: 0.6,
    DistributionChannel.THIRD_PARTY: 0.2,
}

_UNITS_EASY = 12.0        # "a dozen units"
_UNITS_IMPOSSIBLE = 20_000.0  # "tens of thousands"

_PRICE_FLOOR_USD = 100_000.0
_PRICE_CEILING_USD = 1_000_000.0

#: Entry configuration assumed for field-upgradable families when scoring
#: scalability headroom (note 47's entry-level systems are 2-processor).
_ENTRY_PROCESSORS = 2


def size_score(size: SizeClass) -> float:
    """Physical-footprint score."""
    return _SIZE_SCORES[size]


def channel_score(channel: DistributionChannel) -> float:
    """Distribution-channel score."""
    return _CHANNEL_SCORES[channel]


def units_score(units_installed: float | None) -> float:
    """Installed-base score (log interpolation between the anchors).

    ``None`` (unknown installed base) scores a neutral 0.5.
    """
    if units_installed is None:
        return 0.5
    u = check_non_negative(units_installed, "units_installed")
    if u <= _UNITS_EASY:
        return 1.0
    span = np.log10(_UNITS_IMPOSSIBLE / _UNITS_EASY)
    return float(np.clip(1.0 - np.log10(u / _UNITS_EASY) / span, 0.0, 1.0))


def price_score(entry_price_usd: float | None) -> float:
    """Entry-price score.

    Rises from 0.1 at the $100K marketing threshold to 1.0 at $1M; cheaper
    products decay toward a small floor.  ``None`` scores neutral 0.5.
    """
    if entry_price_usd is None:
        return 0.5
    p = check_non_negative(entry_price_usd, "entry_price_usd")
    if p >= _PRICE_CEILING_USD:
        return 1.0
    if p >= _PRICE_FLOOR_USD:
        span = np.log10(_PRICE_CEILING_USD / _PRICE_FLOOR_USD)
        return float(0.1 + 0.9 * np.log10(p / _PRICE_FLOOR_USD) / span)
    return float(max(0.02, 0.1 * p / _PRICE_FLOOR_USD))


def scalability_score(machine: MachineSpec) -> float:
    """Field-upgrade headroom score.

    A family that cannot be upgraded without the vendor scores 1.0.  For
    field-upgradable families the score falls by half a point per decade of
    CTP headroom between the entry configuration and the family ceiling.
    """
    if not machine.field_upgradable:
        return 1.0
    if machine.element is None:
        return 0.5
    ceiling = machine.max_configuration().ctp_mtops
    entry_n = min(_ENTRY_PROCESSORS, machine.n_processors)
    entry = machine.at_processors(entry_n).ctp_mtops
    ratio = max(ceiling / entry, 1.0)
    return float(np.clip(1.0 - 0.5 * np.log10(ratio), 0.05, 1.0))


def age_score(machine: MachineSpec, year: float) -> float:
    """Product-age score at an assessment date.

    Within the product cycle the vendor still tracks units closely (1.0);
    the score then declines linearly to a 0.1 floor two years past the end
    of the cycle, when secondary markets are extensive and units are
    "resold ... without attracting much attention".  Not part of the
    composite product index (Table 4 is age-independent); the frontier uses
    the two-year lag rule directly.
    """
    age = year - machine.year
    if age < 0:
        raise ValueError(
            f"{machine.model}: assessment year {year} precedes introduction"
        )
    cycle = machine.product_cycle_years
    if age <= cycle:
        return 1.0
    return float(np.clip(1.0 - 0.9 * (age - cycle) / 2.0, 0.1, 1.0))


@dataclass(frozen=True)
class FactorScores:
    """The five product-attribute scores of one machine."""

    size: float
    units: float
    channel: float
    price: float
    scalability: float

    @classmethod
    def of(cls, machine: MachineSpec) -> "FactorScores":
        """Score a catalog machine."""
        return cls(
            size=size_score(machine.size_class),
            units=units_score(machine.units_installed),
            channel=channel_score(machine.channel),
            price=price_score(machine.entry_price_usd),
            scalability=scalability_score(machine),
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "size": self.size,
            "units": self.units,
            "channel": self.channel,
            "price": self.price,
            "scalability": self.scalability,
        }
