"""Figure 11: Threshold Analysis: June 1995 Snapshot.

The paper's culminating figure: both distributions, lines A and D, the
valid threshold range, and the protectable application clusters.
"""

import numpy as np

from repro.core.framework import application_clusters
from repro.core.threshold import snapshot
from repro.reporting.tables import render_table


def build_snapshot():
    snap = snapshot(1995.5)
    clusters = application_clusters(1995.5)
    return snap, clusters


def test_fig11_june_1995_snapshot(benchmark, emit):
    snap, clusters = benchmark(build_snapshot)
    centers = snap.bin_centers()
    keep = (snap.installed_counts > 0.5) | (snap.application_counts > 0)
    rows = [
        [f"{centers[i]:,.2f}", round(snap.installed_counts[i]),
         int(snap.application_counts[i])]
        for i in np.nonzero(keep)[0]
    ]
    text = render_table(
        ["bin center (Mtops)", "installed units", "application minimums"],
        rows,
        title="Figure 11: threshold analysis, June 1995 snapshot",
    )
    text += (
        f"\n\nline A (lower bound) = {snap.line_a_mtops:,.0f} Mtops"
        f"\nline D (max available) = {snap.line_d_mtops:,.0f} Mtops"
        f"\nvalid range exists: {snap.bounds.valid_range_exists}"
        "\n\nprotectable clusters:"
    )
    for start, members in clusters:
        text += f"\n  from {start:,.0f} Mtops: {len(members)} applications"
    emit(text)

    # The paper's reading of this snapshot.
    assert 4_000.0 <= snap.line_a_mtops <= 5_000.0
    assert snap.bounds.valid_range_exists
    assert len(clusters) >= 2
