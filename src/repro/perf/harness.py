"""Min-of-k wall-clock timing with warmup.

``time_workload`` runs a no-argument callable ``warmup`` times unmeasured
(to populate caches, JIT the first numpy dispatch, fault in pages), then
``repeats`` measured times, and reports the *minimum* — the standard
low-noise estimator for a deterministic workload (mean and max only add
scheduler noise).
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.obs.errors import ValidationError
from repro.obs.trace import trace

__all__ = ["Timing", "time_workload"]


@dataclass(frozen=True)
class Timing:
    """One timed workload."""

    name: str
    best_seconds: float
    mean_seconds: float
    repeats: int
    warmup: int

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "best_seconds": self.best_seconds,
            "mean_seconds": self.mean_seconds,
            "repeats": self.repeats,
            "warmup": self.warmup,
        }


def time_workload(
    fn: Callable[[], object],
    name: str,
    repeats: int = 5,
    warmup: int = 1,
) -> Timing:
    """Time ``fn`` (min over ``repeats`` runs after ``warmup`` unmeasured
    runs)."""
    if repeats < 1:
        raise ValidationError("repeats must be >= 1",
                              context={"got": repeats, "valid": ">= 1"})
    if warmup < 0:
        raise ValidationError("warmup must be >= 0",
                              context={"got": warmup, "valid": ">= 0"})
    with trace("time_workload", name=name, repeats=repeats, warmup=warmup):
        for _ in range(warmup):
            fn()
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
    return Timing(
        name=name,
        best_seconds=min(times),
        mean_seconds=sum(times) / len(times),
        repeats=repeats,
        warmup=warmup,
    )
