"""Bounded, thread-safe LRU response cache.

The serving layer keys this cache on the *canonicalized* request (see
:mod:`repro.serve.schemas`), so two payloads that spell the same question
differently — explicit defaults, extra whitespace in a machine key, an
omitted license threshold — share one entry.  Values are the finished
response bodies (plain JSON-serializable dicts), treated as immutable
once cached.

A ``capacity`` of 0 disables caching entirely (every ``get`` is a miss
and ``put`` is a no-op), which the load benchmark uses so repeated
payloads exercise the batching path instead of the cache.

Canonical keys are prefixed with the **catalog epoch** in force when the
request was admitted (see ``ServiceEngine.handle``): a mutation event
bumps the epoch, so post-event requests key past every pre-event entry,
and :meth:`LRUCache.purge_below_epoch` reclaims the dead generation
eagerly — the invalidation hook this cache historically lacked.

Hits, misses, evictions, and purges are tracked both locally (exact,
reported by :meth:`LRUCache.info`) and through the global
:mod:`repro.obs` counters (``serve.cache.*``) so they appear in
:func:`repro.obs.metrics_snapshot`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Hashable

from repro.obs.errors import ValidationError
from repro.obs.trace import counter_inc

__all__ = ["MISS", "LRUCache"]

#: Sentinel distinguishing "not cached" from a cached falsy value.
MISS = object()


class LRUCache:
    """A lock-guarded LRU mapping of canonical request keys to responses."""

    def __init__(self, capacity: int,
                 counter_prefix: str = "serve.cache") -> None:
        if not isinstance(capacity, int) or capacity < 0:
            raise ValidationError(
                "cache capacity must be a non-negative integer",
                context={"got": capacity, "valid": ">= 0"},
            )
        self.capacity = capacity
        self._prefix = counter_prefix
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._purges = 0

    def get(self, key: Hashable) -> object:
        """The cached value for ``key``, or :data:`MISS`."""
        with self._lock:
            value = self._data.get(key, MISS) if self.capacity else MISS
            if value is MISS:
                self._misses += 1
                counter_inc(f"{self._prefix}.misses")
                return MISS
            self._data.move_to_end(key)
            self._hits += 1
            counter_inc(f"{self._prefix}.hits")
            return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert (or refresh) ``key``, evicting the least recently used
        entries beyond capacity."""
        if self.capacity == 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self._evictions += 1
                counter_inc(f"{self._prefix}.evictions")

    def clear(self) -> None:
        """Drop all entries (counters keep accumulating)."""
        with self._lock:
            self._data.clear()

    def purge_below_epoch(self, epoch: int) -> int:
        """Drop every entry whose canonical key was minted before
        ``epoch`` (keys are ``(epoch, *request_key)`` tuples); returns
        the number purged.  Non-epoch-prefixed keys are treated as
        epoch 0 — stale by construction once any event has applied."""
        purged = 0
        with self._lock:
            for key in list(self._data):
                key_epoch = key[0] if (
                    isinstance(key, tuple) and key
                    and isinstance(key[0], int)) else 0
                if key_epoch < epoch:
                    del self._data[key]
                    purged += 1
            self._purges += purged
        if purged:
            counter_inc(f"{self._prefix}.purges", purged)
        return purged

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def info(self) -> dict:
        """Exact local statistics (consistent snapshot)."""
        with self._lock:
            hits, misses = self._hits, self._misses
            total = hits + misses
            return {
                "entries": len(self._data),
                "capacity": self.capacity,
                "hits": hits,
                "misses": misses,
                "evictions": self._evictions,
                "purges": self._purges,
                "hit_rate": (hits / total) if total else 0.0,
            }
