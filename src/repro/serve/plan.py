"""The multi-query planner: one heterogeneous batch -> few fused scans.

The serving tier built so far coalesces *within* an endpoint: the
``/rate`` MicroBatcher turns N concurrent ratings into one
``ctp_homogeneous_batch`` call, the ``/policy`` batcher regroups its
batch by tile bucket, and so on.  An agentic client does not speak one
endpoint at a time — a single planning turn issues a ``/review`` that
needs a threshold, three ``/policy`` points on the same tile, a
``/scenario`` point plus the ``/rate`` of the machine under discussion —
and until now each of those paid its own columnar pass even when they
share most of the work.

This module closes that gap with a classic query-planner shape:

1. **Canonicalize** — every sub-request is already a frozen, hashable
   schema object whose ``cache_key`` is its canonical identity.
2. **CSE** — identical sub-requests collapse to one *unique query*;
   duplicates only fan the computed body back out (``cse_hits``).
3. **Fuse** — unique queries are grouped into primitive columnar ops:
   one ``ctp_homogeneous_batch`` per coupling across *all* rating
   queries, one controllability matrix pass across all license queries,
   one tile-bucket regroup across all policy / scenario point queries,
   one era bisect per distinct year, one ``run_annual_review`` per
   distinct (year, policy).
4. **Reuse across endpoints** — a review computes the threshold in
   force at its year with the *same* ``threshold_at`` the rate /
   threshold-at queries need, so an in-plan review satisfies their era
   dependency for free (``reuse_hits``; see the dependency table in
   DESIGN.md, "Query planner & fusion").
5. **Execute under the catalog read guard** — the whole plan runs
   against one epoch; a queued mutation waits, so every answer in the
   batch is consistent with every other.
6. **Scatter** — results land per input slot, byte-identical to
   dispatching each request alone (every primitive op is bit-exact per
   row/cell, a property the serving tests already pin per endpoint).

Errors are isolated per unique query: an infeasible era year fails only
the slots that depend on it, and a fused op that raises is retried
query-by-query so a poisoned batch-mate can never change another slot's
answer (the fallback reproduces exactly what sequential dispatch would
have returned).

Every result slot is either a response body ``dict`` or the
``BaseException`` that sub-request alone would have raised — callers
(the MicroBatcher fan-out, the ``/batch`` envelope, the JSON-RPC
bridge) map exceptions to their transport's error shape.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from collections.abc import Sequence

import numpy as np

from repro.controllability.index import (
    CLASS_BY_CODE,
    DEFAULT_WEIGHTS,
    classify_index_matrix,
    index_matrix,
    score_matrix,
)
from repro.core.review import run_annual_review
from repro.ctp.batch import ctp_homogeneous_batch
from repro.diffusion.policy import ExportControlPolicy, threshold_at
from repro.catalog.registry import read_guard
from repro.obs.trace import counter_inc, trace

__all__ = [
    "QueryPlan",
    "build_plan",
    "execute_plan",
    "machine_body",
    "review_body",
    "threshold_at_body",
    "plan_stats",
    "reset_plan_stats",
]


# ---------------------------------------------------------------------------
# plan statistics (module-level: one planner per process, like the tile
# planes), surfaced as ``serve.plan`` in /metrics and rolled up across a
# prefork fleet
# ---------------------------------------------------------------------------

_STATS_LOCK = threading.Lock()


def _fresh_stats() -> dict:
    return {
        "plans": 0,            # execute_plan calls
        "queries": 0,          # input slots across all plans
        "unique_queries": 0,   # slots surviving CSE
        "cse_hits": 0,         # duplicate slots served from a batch-mate
        "reuse_hits": 0,       # cross-endpoint reuses (review -> era)
        "ops": 0,              # primitive columnar ops executed
        "ops_fused": 0,        # ops that served >= 2 unique queries
        "fanout_histogram": {},  # unique queries per op -> count
    }


_STATS = _fresh_stats()


def _record_op(fanout: int) -> None:
    with _STATS_LOCK:
        _STATS["ops"] += 1
        if fanout >= 2:
            _STATS["ops_fused"] += 1
        hist = _STATS["fanout_histogram"]
        hist[fanout] = hist.get(fanout, 0) + 1


def plan_stats() -> dict:
    """JSON-serializable planner statistics since process start."""
    with _STATS_LOCK:
        out = dict(_STATS)
        out["fanout_histogram"] = {
            str(fanout): count
            for fanout, count in sorted(_STATS["fanout_histogram"].items())
        }
    return out


def reset_plan_stats() -> None:
    """Zero the counters (tests and benchmarks)."""
    global _STATS
    with _STATS_LOCK:
        _STATS = _fresh_stats()


# ---------------------------------------------------------------------------
# plan structure
# ---------------------------------------------------------------------------

class _Query:
    """One unique (post-CSE) query and the slots it fans out to."""

    __slots__ = ("request", "endpoint", "slots", "result")

    def __init__(self, request: object, endpoint: str) -> None:
        self.request = request
        self.endpoint = endpoint
        self.slots: list[int] = []
        self.result: object = None  # body dict or BaseException


class QueryPlan:
    """A compiled batch: slot order + unique queries, ready to execute."""

    def __init__(self, requests: Sequence[object]) -> None:
        self.n_slots = len(requests)
        self.uniques: dict[tuple, _Query] = {}
        self.slot_keys: list[tuple] = []
        for i, request in enumerate(requests):
            key = request.cache_key
            query = self.uniques.get(key)
            if query is None:
                query = self.uniques[key] = _Query(request, key[0])
            query.slots.append(i)
            self.slot_keys.append(key)

    @property
    def cse_hits(self) -> int:
        return self.n_slots - len(self.uniques)

    def by_endpoint(self, endpoint: str) -> list[_Query]:
        return [q for q in self.uniques.values() if q.endpoint == endpoint]

    def summary(self) -> dict:
        """The per-plan roll-up embedded in a ``/batch`` response."""
        return {
            "queries": self.n_slots,
            "unique_queries": len(self.uniques),
            "cse_hits": self.cse_hits,
        }


def build_plan(requests: Sequence[object]) -> QueryPlan:
    """Compile canonical requests into a deduplicated query plan.

    Accepts any mix of the seven canonical request types (rate, license,
    machine, review, policy, scenario, threshold_at); identity is the
    request's ``cache_key``, so equivalent payload spellings collapse
    exactly as they do in the response cache.
    """
    return QueryPlan(requests)


# ---------------------------------------------------------------------------
# response bodies — field-for-field identical to sequential dispatch
# (dict insertion order is serialization order, so it is part of the
# byte-identity contract)
# ---------------------------------------------------------------------------

def _rate_body(request, rating: float, threshold: float) -> dict:
    return {
        "endpoint": "rate",
        "ctp_mtops": rating,
        "threshold_mtops": threshold,
        "supercomputer": bool(rating >= threshold),
        "processors": request.processors,
        "coupling": request.coupling.name.lower(),
        "year": request.year,
    }


def _license_body(request, index: float, code: int) -> dict:
    decision = ExportControlPolicy(
        request.threshold_mtops
    ).license_decision(request.machine, request.destination)
    return {
        "endpoint": "license",
        "machine": request.machine.key,
        "destination": request.destination,
        "year": request.year,
        "rating_mtops": decision.rating_mtops,
        "threshold_mtops": request.threshold_mtops,
        "tier": decision.tier.name.lower(),
        "tier_label": decision.tier.value,
        "requires_license": decision.requires_license,
        "safeguards_required": decision.safeguards_required,
        "approved": decision.approved,
        "controllability_index": float(index),
        "classification": CLASS_BY_CODE[int(code)].value,
    }


def _policy_body(cell) -> dict:
    return {
        "endpoint": "policy",
        "threshold_mtops": cell.threshold_mtops,
        "year": cell.year,
        "frontier_mtops": cell.frontier_mtops,
        "credible": cell.credible,
        "protected_count": len(cell.protected_applications),
        "illusory_count": len(cell.illusory_applications),
        "protected_applications": [
            a.name for a in cell.protected_applications],
        "illusory_applications": [
            a.name for a in cell.illusory_applications],
        "burden_units": cell.burden_units,
        "uncontrollable_covered_systems": [
            m.key for m in cell.uncontrollable_covered_systems],
    }


def _scenario_body(request, point) -> dict:
    from repro.scenarios.spec import scenario_to_payload

    cell = point.cell
    return {
        "endpoint": "scenario",
        "scenario": request.scenario.name,
        "world": scenario_to_payload(request.scenario),
        "historical": request.scenario.is_historical,
        "threshold_mtops": cell.threshold_mtops,
        "year": cell.year,
        "frontier_mtops": cell.frontier_mtops,
        "credible": cell.credible,
        "protected_count": len(cell.protected_applications),
        "illusory_count": len(cell.illusory_applications),
        "burden_units": cell.burden_units,
        "uncontrollable_count":
            len(cell.uncontrollable_covered_systems),
        "threshold_in_force_mtops":
            point.threshold_in_force_mtops,
        "in_force_credible": point.in_force_credible,
    }


def machine_body(request) -> dict:
    """``/machine`` response: catalog lookup + controllability assessment."""
    from repro.controllability.index import assess

    machine = request.machine
    assessment = assess(machine)
    return {
        "endpoint": "machine",
        "machine": machine.key,
        "country": machine.country,
        "year": machine.year,
        "architecture": machine.architecture.value,
        "processors": machine.n_processors,
        "ctp_mtops": machine.ctp_mtops,
        "max_config_ctp_mtops": machine.max_configuration().ctp_mtops,
        "controllability_index": assessment.index,
        "classification": assessment.classification.value,
    }


def review_body(request) -> dict:
    """``/review`` response: one full annual-review run."""
    review = run_annual_review(request.year, request.policy)
    premises = review.premises
    return {
        "endpoint": "review",
        "year": request.year,
        "policy": request.policy.name.lower(),
        "premises": {
            f"premise{report.number}": report.holds
            for report in (premises.premise1, premises.premise2,
                           premises.premise3)
        },
        "bounds_mtops": {
            "lower_uncontrollable": review.bounds.uncontrollable_mtops,
            "lower_foreign": review.bounds.foreign_mtops,
            "upper_application": review.bounds.upper_application_mtops,
            "upper_theoretical": review.bounds.upper_theoretical_mtops,
        },
        "threshold_in_force_mtops": review.threshold_in_force,
        "recommended_threshold_mtops":
            review.recommendation.threshold_mtops,
        "threshold_is_stale": review.threshold_is_stale,
    }


def threshold_at_body(request) -> dict:
    """``/threshold_at`` response: the era threshold in force."""
    return {
        "endpoint": "threshold_at",
        "year": request.year,
        "threshold_mtops": threshold_at(request.year),
    }


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------

def execute_plan(plan: QueryPlan,
                 caller_holds_guard: bool = False) -> list[object]:
    """Run ``plan`` under one catalog read guard; scatter per slot.

    Returns one entry per input slot: the response body ``dict``, or the
    ``BaseException`` that sub-request alone would have raised.  Slots
    that shared a unique query share the same body object (responses are
    treated as immutable everywhere, exactly like LRU-cache hits).

    ``caller_holds_guard`` skips taking the read guard (it is not
    reentrant) when the caller — a MicroBatcher dispatch — already holds
    it for the whole batch.
    """
    guard = nullcontext() if caller_holds_guard else read_guard()
    with guard:
        with trace("serve.plan", size=plan.n_slots,
                   unique=len(plan.uniques)):
            _run_reviews(plan)
            eras = _resolve_eras(plan)
            _run_rates(plan, eras)
            _run_threshold_ats(plan, eras)
            _run_licenses(plan)
            _run_policies(plan)
            _run_scenarios(plan)
            _run_machines(plan)
    for query in plan.uniques.values():
        if query.result is None:  # unknown kind: fail its slots, not None
            query.result = RuntimeError(
                f"planner has no op for endpoint {query.endpoint!r}")
    with _STATS_LOCK:
        _STATS["plans"] += 1
        _STATS["queries"] += plan.n_slots
        _STATS["unique_queries"] += len(plan.uniques)
        _STATS["cse_hits"] += plan.cse_hits
    if plan.cse_hits:
        counter_inc("serve.plan.cse_hits", plan.cse_hits)
    return [plan.uniques[key].result for key in plan.slot_keys]


def _run_reviews(plan: QueryPlan) -> None:
    # Reviews run first: each one derives the threshold in force at its
    # year through the same scalar ``threshold_at``, so later era
    # resolution can reuse the in-batch value (review -> rate edge).
    for query in plan.by_endpoint("review"):
        try:
            query.result = review_body(query.request)
        except BaseException as exc:  # noqa: BLE001 — isolated per slot
            query.result = exc
        _record_op(1)


def _resolve_eras(plan: QueryPlan) -> dict[float, object]:
    """The threshold in force per distinct year, reused or bisected.

    Values are floats, or the exception a sequential ``threshold_at``
    call raised for that year (propagated to every dependent slot).
    """
    needed: dict[float, int] = {}
    for endpoint in ("rate", "threshold_at"):
        for query in plan.by_endpoint(endpoint):
            year = query.request.year
            needed[year] = needed.get(year, 0) + 1
    if not needed:
        return {}
    in_batch: dict[float, float] = {}
    for query in plan.by_endpoint("review"):
        if isinstance(query.result, dict):
            in_batch.setdefault(query.request.year,
                                query.result["threshold_in_force_mtops"])
    eras: dict[float, object] = {}
    reuses = 0
    for year, fanout in needed.items():
        if year in in_batch:
            # Bit-identical by construction: the review called the same
            # threshold_at(year) under the same epoch.
            eras[year] = in_batch[year]
            reuses += 1
            continue
        try:
            eras[year] = threshold_at(year)
        except BaseException as exc:  # noqa: BLE001 — isolated per year
            eras[year] = exc
        _record_op(fanout)
    if reuses:
        with _STATS_LOCK:
            _STATS["reuse_hits"] += reuses
        counter_inc("serve.plan.reuse_hits", reuses)
    return eras


def _finish_rate(query: _Query, rating: float,
                 eras: dict[float, object]) -> None:
    era = eras[query.request.year]
    if isinstance(era, BaseException):
        query.result = era
        return
    try:
        query.result = _rate_body(query.request, float(rating), era)
    except BaseException as exc:  # noqa: BLE001 — isolated per slot
        query.result = exc


def _run_rates(plan: QueryPlan, eras: dict[float, object]) -> None:
    # One fused ctp_homogeneous_batch per coupling across every rating
    # query in the plan; each rating is tp_i * S[n_i] against a shared
    # read-only prefix-sum row, so fused and per-request calls agree bit
    # for bit (the property the serve_load parity gate already pins).
    groups: dict[object, list[_Query]] = {}
    for query in plan.by_endpoint("rate"):
        groups.setdefault(query.request.coupling, []).append(query)
    for coupling, queries in groups.items():
        elements = [q.request.element() for q in queries]
        ns = np.array([q.request.processors for q in queries])
        try:
            ratings = ctp_homogeneous_batch(elements, ns, coupling)
        except BaseException:  # noqa: BLE001 — refuse shared-fate errors
            # A fused failure must not change any slot's answer: fall
            # back to rating each query alone, exactly as sequential
            # dispatch would have.
            for query in queries:
                try:
                    rating = ctp_homogeneous_batch(
                        [query.request.element()],
                        np.array([query.request.processors]), coupling)[0]
                except BaseException as exc:  # noqa: BLE001
                    query.result = exc
                    continue
                _finish_rate(query, rating, eras)
                _record_op(1)
            continue
        for query, rating in zip(queries, ratings):
            _finish_rate(query, rating, eras)
        _record_op(len(queries))


def _run_threshold_ats(plan: QueryPlan, eras: dict[float, object]) -> None:
    for query in plan.by_endpoint("threshold_at"):
        era = eras[query.request.year]
        if isinstance(era, BaseException):
            query.result = era
        else:
            query.result = {
                "endpoint": "threshold_at",
                "year": query.request.year,
                "threshold_mtops": era,
            }


def _run_licenses(plan: QueryPlan) -> None:
    # One score/index/classify matrix pass across every license query;
    # row arithmetic matches the scalar ``assess`` bit for bit.
    queries = plan.by_endpoint("license")
    if not queries:
        return
    weights = np.array([[DEFAULT_WEIGHTS.size, DEFAULT_WEIGHTS.units,
                         DEFAULT_WEIGHTS.channel, DEFAULT_WEIGHTS.price,
                         DEFAULT_WEIGHTS.scalability]])

    def matrix_pass(batch: list[_Query]) -> None:
        machines = tuple(q.request.machine for q in batch)
        scores = score_matrix(machines)
        indices = index_matrix(weights, scores)[0]
        codes = classify_index_matrix(
            indices, DEFAULT_WEIGHTS.uncontrollable_below,
            DEFAULT_WEIGHTS.controllable_at)
        for query, index, code in zip(batch, indices, codes):
            try:
                query.result = _license_body(query.request, index, code)
            except BaseException as exc:  # noqa: BLE001
                query.result = exc

    try:
        matrix_pass(queries)
    except BaseException:  # noqa: BLE001 — refuse shared-fate errors
        for query in queries:
            try:
                matrix_pass([query])
            except BaseException as exc:  # noqa: BLE001
                query.result = exc
            _record_op(1)
        return
    _record_op(len(queries))


def _run_policies(plan: QueryPlan) -> None:
    # One tile-bucket regroup across every policy point in the plan:
    # same-tile queries share one lazy build (or a pure cache hit).
    from repro.tiles import policy_cells

    queries = plan.by_endpoint("policy")
    if not queries:
        return
    try:
        cells = policy_cells(
            [(q.request.threshold_mtops, q.request.year) for q in queries])
    except BaseException:  # noqa: BLE001 — refuse shared-fate errors
        for query in queries:
            try:
                cell = policy_cells(
                    [(query.request.threshold_mtops, query.request.year)])[0]
                query.result = _policy_body(cell)
            except BaseException as exc:  # noqa: BLE001
                query.result = exc
            _record_op(1)
        return
    for query, cell in zip(queries, cells):
        query.result = _policy_body(cell)
    _record_op(len(queries))


def _run_scenarios(plan: QueryPlan) -> None:
    # One (world, tile-bucket) regroup across every scenario point; the
    # plan already holds the read guard (it is not reentrant).
    from repro.tiles import scenario_cells

    queries = plan.by_endpoint("scenario")
    if not queries:
        return

    def points_of(batch: list[_Query]) -> list:
        return scenario_cells(
            [(q.request.scenario, q.request.threshold_mtops,
              q.request.year) for q in batch],
            _caller_holds_guard=True)

    try:
        points = points_of(queries)
    except BaseException:  # noqa: BLE001 — refuse shared-fate errors
        for query in queries:
            try:
                query.result = _scenario_body(query.request,
                                              points_of([query])[0])
            except BaseException as exc:  # noqa: BLE001
                query.result = exc
            _record_op(1)
        return
    for query, point in zip(queries, points):
        query.result = _scenario_body(query.request, point)
    _record_op(len(queries))


def _run_machines(plan: QueryPlan) -> None:
    for query in plan.by_endpoint("machine"):
        try:
            query.result = machine_body(query.request)
        except BaseException as exc:  # noqa: BLE001 — isolated per slot
            query.result = exc
        _record_op(1)
