"""Tests for the ray-tracing and sparse-solver kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.calibrate import calibrate_kernels
from repro.kernels.raytrace import Sphere, demo_scene, render, render_rows
from repro.kernels.solvers import (
    conjugate_gradient,
    jacobi_poisson,
    poisson_matrix,
)


class TestRaytrace:
    def test_image_shape_and_range(self):
        img = render(demo_scene(), 32, 24)
        assert img.shape == (24, 32)
        assert img.min() >= 0.0
        assert img.max() <= 1.0

    def test_spheres_visible(self):
        img = render(demo_scene())
        background = 0.05
        assert (img > background + 0.1).sum() > 100

    def test_row_independence_is_exact(self):
        """The embarrassingly parallel property: any partition of rows
        reproduces the full image bit for bit."""
        scene = demo_scene()
        full = render(scene, 48, 48)
        rng = np.random.default_rng(3)
        rows = rng.permutation(48)
        split = np.empty_like(full)
        for chunk in np.array_split(rows, 5):
            split[chunk] = render_rows(scene, chunk, 48, 48)
        assert np.array_equal(full, split)

    def test_empty_scene_is_background(self):
        img = render([], 8, 8)
        assert np.allclose(img, 0.05)

    def test_nearer_sphere_occludes(self):
        behind = Sphere(0.0, 0.0, -5.0, 0.8, albedo=1.0)
        front = Sphere(0.0, 0.0, -1.0, 0.4, albedo=0.2)
        img_pair = render([behind, front], 64, 64)
        img_front_only = render([front], 64, 64)
        center = (32, 32)
        assert img_pair[center] == pytest.approx(img_front_only[center])

    def test_validation(self):
        with pytest.raises(ValueError):
            render_rows(demo_scene(), np.array([99]), 8, 8)
        with pytest.raises(ValueError):
            Sphere(0, 0, 0, radius=0.0)
        with pytest.raises(ValueError):
            Sphere(0, 0, 0, radius=1.0, albedo=1.5)

    @given(st.integers(min_value=0, max_value=31))
    @settings(max_examples=10, deadline=None)
    def test_any_single_row_matches_full(self, row):
        scene = demo_scene()
        full = render(scene, 32, 32)
        single = render_rows(scene, np.array([row]), 32, 32)
        assert np.array_equal(full[row], single[0])


class TestPoissonMatrix:
    def test_symmetric(self):
        a = poisson_matrix(8)
        assert (a - a.T).nnz == 0

    def test_positive_definite(self):
        a = poisson_matrix(6).toarray()
        eigenvalues = np.linalg.eigvalsh(a)
        assert eigenvalues.min() > 0

    def test_no_wrap_across_rows(self):
        a = poisson_matrix(4).toarray()
        # Grid point 3 (end of row 0) must not couple to point 4 (start
        # of row 1) through the "x-direction" off-diagonal.
        assert a[3, 4] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_matrix(0)


class TestJacobi:
    def test_residual_monotone(self):
        _, hist = jacobi_poisson(np.ones((12, 12)), 300)
        assert np.all(np.diff(hist) <= 1e-12)

    def test_converges_toward_dense_solution(self):
        n = 10
        f = np.ones((n, n))
        u, _ = jacobi_poisson(f, 4_000)
        dense = np.linalg.solve(poisson_matrix(n).toarray(), f.ravel())
        assert np.allclose(u.ravel(), dense, atol=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            jacobi_poisson(np.ones((4, 5)))
        with pytest.raises(ValueError):
            jacobi_poisson(np.ones((4, 4)), iterations=0)


class TestConjugateGradient:
    def test_matches_dense_solve(self):
        n = 12
        a = poisson_matrix(n)
        rng = np.random.default_rng(0)
        b = rng.normal(size=n * n)
        x, iters = conjugate_gradient(a, b, tol=1e-12)
        assert np.allclose(a @ x, b, atol=1e-8)
        assert iters <= n * n

    def test_faster_than_jacobi(self):
        # CG's iteration count is far below Jacobi's for the same
        # accuracy — why real codes use Krylov methods despite the
        # synchronization cost.
        n = 16
        a = poisson_matrix(n)
        b = np.ones(n * n)
        _, iters = conjugate_gradient(a, b, tol=1e-8)
        _, hist = jacobi_poisson(np.ones((n, n)), 400)
        jacobi_relative = hist[-1] / np.linalg.norm(b)
        assert iters < 200
        assert jacobi_relative > 1e-8  # Jacobi is nowhere near after 400

    def test_rejects_indefinite(self):
        a = poisson_matrix(4).tolil()
        a[0, 0] = -100.0
        with pytest.raises(np.linalg.LinAlgError):
            conjugate_gradient(a.tocsr(), np.ones(16))

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            conjugate_gradient(poisson_matrix(4), np.ones(7))


class TestCalibration:
    def test_reports_all_kernels(self):
        cals = calibrate_kernels(sw_n=48, sw_steps=5, rt_size=48, cg_n=16,
                                 repeats=1)
        names = {c.name for c in cals}
        assert names == {"shallow water", "ray tracing", "2-D FFT",
                         "sparse CG"}
        for c in cals:
            assert c.mflops > 0

    def test_granularity_ordering(self):
        """The embarrassingly parallel kernel has infinite granularity;
        the halo and reduction kernels are finite — the Table 5 spectrum
        measured from real code."""
        cals = {c.name: c for c in calibrate_kernels(sw_n=48, sw_steps=5,
                                                     rt_size=48, cg_n=16,
                                                     repeats=1)}
        assert cals["ray tracing"].granularity_flops_per_byte == float("inf")
        assert np.isfinite(cals["shallow water"].granularity_flops_per_byte)
        assert np.isfinite(cals["sparse CG"].granularity_flops_per_byte)

    def test_validation(self):
        with pytest.raises(ValueError):
            calibrate_kernels(sw_n=0)
