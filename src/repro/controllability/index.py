"""Composite controllability index and Table 4 classifications.

The index is a weighted average of the five product-attribute scores.
Classification thresholds are calibrated so the reconstruction reproduces
Chapter 3's verdicts: Cray vector machines and the big MPPs classify
CONTROLLABLE; the Cray CS6400 and the SGI Challenge/PowerChallenge series —
"the most powerful uncontrollable systems available in mid-1995" — classify
UNCONTROLLABLE, along with volume workstations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro._util import check_fraction
from repro.obs.errors import ValidationError
from repro.controllability.factors import FactorScores
from repro.machines.spec import MachineSpec

__all__ = [
    "Classification",
    "ControllabilityWeights",
    "DEFAULT_WEIGHTS",
    "ControllabilityAssessment",
    "assess",
    "cached_scores",
    "clear_assessment_caches",
    "score_matrix",
    "index_matrix",
    "classify_index_matrix",
    "CLASS_BY_CODE",
    "classification_table",
]


class Classification(enum.Enum):
    """Three-way controllability verdict."""

    CONTROLLABLE = "controllable"
    MARGINAL = "marginal"
    UNCONTROLLABLE = "uncontrollable"


@dataclass(frozen=True)
class ControllabilityWeights:
    """Relative weight of each factor in the composite index.

    Weights must sum to 1.  The installed base carries the most weight —
    "at some point it becomes economically infeasible for companies to
    monitor and verify this information" — followed equally by footprint,
    channel structure, and upgrade headroom.
    """

    size: float = 0.20
    units: float = 0.25
    channel: float = 0.20
    price: float = 0.15
    scalability: float = 0.20
    #: Index below which a product is UNCONTROLLABLE.
    uncontrollable_below: float = 0.50
    #: Index at or above which a product is CONTROLLABLE.
    controllable_at: float = 0.70

    def __post_init__(self) -> None:
        total = self.size + self.units + self.channel + self.price + self.scalability
        if abs(total - 1.0) > 1e-9:
            raise ValidationError(
                f"factor weights must sum to 1, got {total}",
                context={"got": total, "valid": "sum == 1"},
            )
        check_fraction(self.uncontrollable_below, "uncontrollable_below")
        check_fraction(self.controllable_at, "controllable_at")
        if self.uncontrollable_below >= self.controllable_at:
            raise ValidationError(
                "uncontrollable_below must be < controllable_at",
                context={"uncontrollable_below": self.uncontrollable_below,
                         "controllable_at": self.controllable_at},
            )


DEFAULT_WEIGHTS = ControllabilityWeights()


@dataclass(frozen=True)
class ControllabilityAssessment:
    """Result of assessing one machine."""

    machine: MachineSpec
    scores: FactorScores
    index: float
    classification: Classification

    @property
    def is_uncontrollable(self) -> bool:
        return self.classification is Classification.UNCONTROLLABLE


@lru_cache(maxsize=None)
def cached_scores(machine: MachineSpec) -> FactorScores:
    """Memoized factor scores of one (frozen, hashable) machine spec.

    Factor scores are weight-independent, so every assessment of a catalog
    machine — across frontier queries, Monte-Carlo draws, and year grids —
    reuses one scoring pass.  Scoring walks the CTP pipeline (the
    scalability factor rates the family ceiling), which is what made the
    uncached per-query path the sensitivity analysis's bottleneck.
    """
    return FactorScores.of(machine)


def score_matrix(machines: tuple[MachineSpec, ...]) -> np.ndarray:
    """Factor-score matrix, one machine per row, columns in the composite
    order (size, units, channel, price, scalability)."""
    if not machines:
        return np.empty((0, 5))
    return np.array([
        [s.size, s.units, s.channel, s.price, s.scalability]
        for s in (cached_scores(m) for m in machines)
    ])


def index_matrix(weight_rows: np.ndarray, scores: np.ndarray) -> np.ndarray:
    """Composite indices for N weightings x M machines in one pass.

    ``weight_rows`` is ``(N, 5)`` (same column order as
    :func:`score_matrix`); the result is ``(N, M)``.  The five products are
    summed left-to-right, matching :func:`assess`'s scalar expression
    bit-for-bit so batched classifications can never disagree with the
    scalar path on a knife-edge index.
    """
    w = np.asarray(weight_rows, dtype=float)
    s = np.asarray(scores, dtype=float)
    if w.ndim != 2 or w.shape[1] != 5 or s.ndim != 2 or s.shape[1] != 5:
        raise ValidationError(
            "weight_rows and scores must have shape (*, 5)",
            context={"weights_shape": w.shape, "scores_shape": s.shape},
        )
    out = w[:, 0:1] * s[None, :, 0]
    for k in range(1, 5):
        out = out + w[:, k:k + 1] * s[None, :, k]
    return out


#: Classification per integer code used by :func:`classify_index_matrix`.
CLASS_BY_CODE: tuple[Classification, ...] = (
    Classification.UNCONTROLLABLE,
    Classification.MARGINAL,
    Classification.CONTROLLABLE,
)
#: Integer codes for vectorized classification comparisons.
_CLASS_CODES = {cls: code for code, cls in enumerate(CLASS_BY_CODE)}


def classify_index_matrix(
    indices: np.ndarray,
    uncontrollable_below: np.ndarray | float,
    controllable_at: np.ndarray | float,
) -> np.ndarray:
    """Vectorized three-way classification of composite indices.

    Returns integer codes (0 = uncontrollable, 1 = marginal,
    2 = controllable; see ``Classification`` ordering in
    ``_CLASS_CODES``).  Cut arrays broadcast against ``indices``, so
    per-draw jittered cuts classify a whole ``(draws, machines)`` index
    matrix at once.
    """
    idx = np.asarray(indices, dtype=float)
    low = np.asarray(uncontrollable_below, dtype=float)
    high = np.asarray(controllable_at, dtype=float)
    return np.where(idx < low, np.int8(0),
                    np.where(idx < high, np.int8(1), np.int8(2)))


@lru_cache(maxsize=4096)
def assess(
    machine: MachineSpec,
    weights: ControllabilityWeights = DEFAULT_WEIGHTS,
) -> ControllabilityAssessment:
    """Score, combine, and classify one machine.

    Memoized: both arguments are frozen/hashable dataclasses and the
    assessment is pure, so the market scans and policy grids that ask
    about the same machine thousands of times share one evaluation.
    ``clear_assessment_caches`` is the eviction hook.
    """
    scores = cached_scores(machine)
    index = (
        weights.size * scores.size
        + weights.units * scores.units
        + weights.channel * scores.channel
        + weights.price * scores.price
        + weights.scalability * scores.scalability
    )
    if index < weights.uncontrollable_below:
        cls = Classification.UNCONTROLLABLE
    elif index < weights.controllable_at:
        cls = Classification.MARGINAL
    else:
        cls = Classification.CONTROLLABLE
    return ControllabilityAssessment(
        machine=machine, scores=scores, index=float(index), classification=cls
    )


def clear_assessment_caches() -> None:
    """Drop memoized assessments and factor scores (tests and ablation
    hygiene — the assessment-side analogue of
    :func:`repro.ctp.batch.clear_credit_cache`).  Downstream caches built
    *from* assessments (the frontier index, the machine columns) hold
    values, not references, so clearing here cannot leave them stale —
    but tests that re-score a mutated catalog should clear those too.
    """
    assess.cache_clear()
    cached_scores.cache_clear()


# Assessments are keyed by the frozen spec, so an amended machine can
# never *stale* them — but the replaced spec's entries are dead weight,
# and the churn path drops them eagerly.  Appends leave every entry valid.
def _register_assessment_hook() -> None:
    from repro.catalog.registry import register_invalidation_hook

    register_invalidation_hook(
        "controllability.assessments",
        lambda epoch: clear_assessment_caches(),
        kinds=("amend_machine",),
    )


_register_assessment_hook()


#: The systems Chapter 3's Table 4 discusses, by catalog key.
TABLE4_SYSTEMS: tuple[str, ...] = (
    "Cray C916",
    "Cray T3D (512)",
    "Intel Paragon XP/S (150)",
    "Thinking Machines CM-5 (128)",
    "IBM SP2 (16)",
    "Convex Exemplar SPP1000 (16)",
    "Cray CS6400 (64)",
    "SGI Challenge XL (36)",
    "SGI PowerChallenge (4)",
    "DEC AlphaServer 8400 (12)",
    "Sun SPARCstation 10",
)


def classification_table(
    weights: ControllabilityWeights = DEFAULT_WEIGHTS,
) -> list[ControllabilityAssessment]:
    """Assess the Table 4 population (most → least controllable)."""
    from repro.machines.catalog import find_machine

    rows = [assess(find_machine(key), weights) for key in TABLE4_SYSTEMS]
    return sorted(rows, key=lambda a: -a.index)
