"""Commercial (U.S./Japanese) systems catalog.

Every CTP rating the paper quotes is carried verbatim in
``quoted_ctp_mtops``; configurations were back-solved from the
reconstruction's aggregation schedule, which lands the quoted ratings on
canonical configurations (e.g. the quoted Cray T3D ratings of 3,439 and
10,056 Mtops correspond to 64- and 512-node machines; the quoted CM-5
ratings of 5,194 / 10,457 / 14,410 Mtops to 128- / 512- / 1024-node
machines).  Entries with ``approx=True`` reconstruct era systems the paper
names without rating.

Controllability fields (installed base, price band, channel, size) follow
Chapter 3's discussion: SGI "several thousands of chassis" through a large
third-party network; Cray vector machines vendor-direct, machine-room
installations; SMP entry prices around $100-200K with $1M+ maximum
configurations (note 47).
"""

from __future__ import annotations

import difflib
from functools import lru_cache

import numpy as np

from repro.ctp.elements import ComputingElement
from repro.machines.microprocessors import find_micro
from repro.machines.spec import (
    Architecture,
    DistributionChannel,
    MachineSpec,
    SizeClass,
)
from repro.obs.errors import CatalogLookupError, ThresholdInfeasibleError
from repro.obs.trace import counter_inc

__all__ = [
    "COMMERCIAL_SYSTEMS",
    "find_machine",
    "commercial_by_year",
    "commercial_by_architecture",
    "max_available_mtops",
    "max_available_mtops_series",
    "max_config_mtops",
    "catalog_index_info",
    "append_machine_entry",
    "amend_machine_entry",
    "restore_baseline_catalog",
]


def _vector_cpu(name: str, clock: float, fp: float, integer: float) -> ComputingElement:
    """A vector-supercomputer CPU: concurrent vector FP pipes plus scalar,
    address, and logical hardware (which is why Cray CPUs rate well above
    their Mflops peak)."""
    return ComputingElement(
        name=name,
        clock_mhz=clock,
        word_bits=64.0,
        fp_ops_per_cycle=fp,
        int_ops_per_cycle=integer,
        concurrent_int_fp=True,
    )


_CRAY1_CPU = _vector_cpu("Cray-1 CPU", 80.0, 2.0, 0.5)
_XMP_CPU = _vector_cpu("X-MP CPU", 105.0, 2.0, 0.5)
_YMP_CPU = _vector_cpu("Y-MP CPU", 167.0, 2.0, 1.3)
_CRAY2_CPU = _vector_cpu("Cray-2 CPU", 244.0, 2.0, 0.5)
_C90_CPU = _vector_cpu("C90 CPU", 238.0, 4.0, 3.25)
_CM5_NODE = ComputingElement(
    name="CM-5 node",
    clock_mhz=32.0,
    word_bits=64.0,
    fp_ops_per_cycle=8.0,  # four vector units, add+multiply each
    int_ops_per_cycle=2.0,
    concurrent_int_fp=True,
)
_VPP500_PE = _vector_cpu("VPP500 PE", 100.0, 16.0, 2.0)
_VAX780_CPU = ComputingElement(
    name="VAX-11/780 CPU", clock_mhz=5.0, word_bits=32.0,
    fp_ops_per_cycle=0.05, int_ops_per_cycle=0.24, concurrent_int_fp=False,
)
_VAX8600_CPU = ComputingElement(
    name="VAX 8600 CPU", clock_mhz=12.5, word_bits=32.0,
    fp_ops_per_cycle=0.08, int_ops_per_cycle=0.2, concurrent_int_fp=False,
)
_PCXT_CPU = ComputingElement(
    name="8088", clock_mhz=4.77, word_bits=16.0,
    fp_ops_per_cycle=0.005, int_ops_per_cycle=0.07, concurrent_int_fp=False,
)
_IBM3090_CPU = ComputingElement(
    name="3090 CPU", clock_mhz=54.0, word_bits=64.0,
    fp_ops_per_cycle=1.0, int_ops_per_cycle=1.0, concurrent_int_fp=True,
)


def _m(**kw) -> MachineSpec:
    return MachineSpec(**kw)


COMMERCIAL_SYSTEMS: tuple[MachineSpec, ...] = (
    # ------------------------- historical anchors -------------------------
    _m(vendor="DEC", model="VAX-11/780", country="USA", year=1977.8,
       architecture=Architecture.UNIPROCESSOR, element=_VAX780_CPU,
       quoted_ctp_mtops=0.8, entry_price_usd=200_000, units_installed=100_000,
       channel=DistributionChannel.THIRD_PARTY, size_class=SizeClass.RACK,
       notes="Lockheed's estimate of the minimum machine for the F-117A design."),
    _m(vendor="DEC", model="VAX 8600", country="USA", year=1984.8,
       architecture=Architecture.UNIPROCESSOR, element=_VAX8600_CPU,
       entry_price_usd=450_000, units_installed=10_000, approx=True,
       channel=DistributionChannel.THIRD_PARTY, size_class=SizeClass.RACK,
       notes="Six-node cluster (~6 Mtops) ran trajectory image analysis."),
    _m(vendor="IBM", model="PC-XT", country="USA", year=1983.2,
       architecture=Architecture.UNIPROCESSOR, element=_PCXT_CPU,
       entry_price_usd=5_000, units_installed=5_000_000, approx=True,
       channel=DistributionChannel.THIRD_PARTY, size_class=SizeClass.DESKTOP,
       notes="Decontrolled January 1985 - the first uncontrollability concession."),
    _m(vendor="IBM", model="3090/250", country="USA", year=1987.0,
       architecture=Architecture.SMP, n_processors=2, element=_IBM3090_CPU,
       quoted_ctp_mtops=189.0, entry_price_usd=5_000_000, units_installed=1_000,
       channel=DistributionChannel.DIRECT, size_class=SizeClass.ROOM,
       notes="Designed the F-117A and one competing ATB (B-2) candidate."),
    # ------------------------- Cray vector line ---------------------------
    _m(vendor="Cray", model="Cray-1", country="USA", year=1976.3,
       architecture=Architecture.VECTOR, element=_CRAY1_CPU,
       quoted_peak_mflops=160.0, entry_price_usd=8_000_000, units_installed=80,
       channel=DistributionChannel.DIRECT, size_class=SizeClass.ROOM,
       notes="Its 160-Mflops peak set the first supercomputer definition."),
    _m(vendor="Cray", model="X-MP/2", country="USA", year=1983.5,
       architecture=Architecture.VECTOR, n_processors=2, element=_XMP_CPU,
       entry_price_usd=10_000_000, units_installed=200, approx=True,
       channel=DistributionChannel.DIRECT, size_class=SizeClass.ROOM,
       notes="The safeguarded 1986 Indian Weather Bureau import."),
    _m(vendor="Cray", model="Y-MP/2", country="USA", year=1988.5,
       architecture=Architecture.VECTOR, n_processors=2, element=_YMP_CPU,
       quoted_ctp_mtops=958.0, entry_price_usd=5_000_000, units_installed=300,
       channel=DistributionChannel.DIRECT, size_class=SizeClass.ROOM,
       notes="F-22 design machine."),
    _m(vendor="Cray", model="Y-MP/8", country="USA", year=1988.5,
       architecture=Architecture.VECTOR, n_processors=8, element=_YMP_CPU,
       entry_price_usd=20_000_000, units_installed=150, approx=True,
       channel=DistributionChannel.DIRECT, size_class=SizeClass.ROOM),
    _m(vendor="Cray", model="Cray-2/2", country="USA", year=1985.5,
       architecture=Architecture.VECTOR, n_processors=2, element=_CRAY2_CPU,
       quoted_ctp_mtops=1_098.0, entry_price_usd=12_000_000, units_installed=25,
       channel=DistributionChannel.DIRECT, size_class=SizeClass.ROOM,
       notes='The paper\'s "Cray Model 2 (1,098 Mtops)" armor/anti-armor machine.'),
    _m(vendor="Cray", model="C916", country="USA", year=1991.7,
       architecture=Architecture.VECTOR, n_processors=16, element=_C90_CPU,
       quoted_ctp_mtops=21_125.0, entry_price_usd=30_000_000, units_installed=60,
       channel=DistributionChannel.DIRECT, size_class=SizeClass.ROOM,
       notes="Workhorse of submarine CSM, acoustic sensor R&D, weapons effects."),
    _m(vendor="Cray", model="C90/8", country="USA", year=1991.7,
       architecture=Architecture.VECTOR, n_processors=8, element=_C90_CPU,
       quoted_ctp_mtops=10_625.0, entry_price_usd=18_000_000, units_installed=40,
       channel=DistributionChannel.DIRECT, size_class=SizeClass.ROOM,
       notes="Numerical weather prediction for all armed services."),
    _m(vendor="Cray", model="T90/32", country="USA", year=1995.2,
       architecture=Architecture.VECTOR, n_processors=32,
       element=_vector_cpu("T90 CPU", 450.0, 4.0, 3.25),
       entry_price_usd=35_000_000, units_installed=10, approx=True,
       channel=DistributionChannel.DIRECT, size_class=SizeClass.ROOM),
    # ------------------------- U.S. MPPs ----------------------------------
    _m(vendor="Intel", model="iPSC/860 (128)", country="USA", year=1990.2,
       architecture=Architecture.MPP, n_processors=128,
       element=find_micro("i860XR").element, quoted_ctp_mtops=3_485.0,
       entry_price_usd=1_500_000, units_installed=150, max_processors=128,
       channel=DistributionChannel.DIRECT, size_class=SizeClass.ROOM,
       notes="Believed minimally sufficient for the JAST design work."),
    _m(vendor="Intel", model="Paragon XP/S (150)", country="USA", year=1992.9,
       architecture=Architecture.MPP, n_processors=150,
       element=find_micro("i860XP").element, quoted_ctp_mtops=4_864.0,
       entry_price_usd=2_000_000, units_installed=100, max_processors=4096,
       channel=DistributionChannel.DIRECT, size_class=SizeClass.ROOM,
       notes="JAST candidate-aircraft design machine."),
    _m(vendor="Intel", model="Paragon XP/S (328)", country="USA", year=1992.9,
       architecture=Architecture.MPP, n_processors=328,
       element=find_micro("i860XP").element, quoted_ctp_mtops=8_980.0,
       entry_price_usd=5_000_000, units_installed=30, max_processors=4096,
       channel=DistributionChannel.DIRECT, size_class=SizeClass.ROOM, approx=True,
       notes="SIRST anti-ship-cruise-missile algorithm development."),
    _m(vendor="Intel", model="Paragon XP/S (352)", country="USA", year=1992.9,
       architecture=Architecture.MPP, n_processors=352,
       element=find_micro("i860XP").element, quoted_ctp_mtops=10_000.0,
       entry_price_usd=5_500_000, units_installed=20, max_processors=4096,
       channel=DistributionChannel.DIRECT, size_class=SizeClass.ROOM, approx=True),
    _m(vendor="Intel", model="Paragon XP/S 140 (6768)", country="USA", year=1995.0,
       architecture=Architecture.MPP, n_processors=6768,
       element=find_micro("i860XP").element, quoted_ctp_mtops=105_000.0,
       entry_price_usd=45_000_000, units_installed=1, max_processors=6768,
       channel=DistributionChannel.DIRECT, size_class=SizeClass.ROOM, approx=True,
       notes='The mid-1995 "state of the art, which exceeds 100,000 Mtops".'),
    _m(vendor="Cray", model="T3D (64)", country="USA", year=1993.7,
       architecture=Architecture.MPP, n_processors=64,
       element=find_micro("Alpha 21064-150").element, quoted_ctp_mtops=3_439.0,
       entry_price_usd=2_500_000, units_installed=60, max_processors=2048,
       channel=DistributionChannel.DIRECT, size_class=SizeClass.ROOM,
       notes="Flight-test trajectory image analysis upgrade machine."),
    _m(vendor="Cray", model="T3D (512)", country="USA", year=1993.7,
       architecture=Architecture.MPP, n_processors=512,
       element=find_micro("Alpha 21064-150").element, quoted_ctp_mtops=10_056.0,
       entry_price_usd=12_000_000, units_installed=10, max_processors=2048,
       channel=DistributionChannel.DIRECT, size_class=SizeClass.ROOM,
       notes="Acoustic-code MPP conversion target; nuclear blast simulation."),
    _m(vendor="Thinking Machines", model="CM-5 (128)", country="USA", year=1991.9,
       architecture=Architecture.MPP, n_processors=128, element=_CM5_NODE,
       quoted_ctp_mtops=5_194.0, entry_price_usd=3_000_000, units_installed=40,
       max_processors=1024, channel=DistributionChannel.DIRECT,
       size_class=SizeClass.ROOM,
       notes="Smart Munitions Test Suite image-processing partition."),
    _m(vendor="Thinking Machines", model="CM-5 (512)", country="USA", year=1991.9,
       architecture=Architecture.MPP, n_processors=512, element=_CM5_NODE,
       quoted_ctp_mtops=10_457.0, entry_price_usd=10_000_000, units_installed=10,
       max_processors=1024, channel=DistributionChannel.DIRECT,
       size_class=SizeClass.ROOM),
    _m(vendor="Thinking Machines", model="CM-5 (1024)", country="USA", year=1993.0,
       architecture=Architecture.MPP, n_processors=1024, element=_CM5_NODE,
       quoted_ctp_mtops=14_410.0, entry_price_usd=25_000_000, units_installed=2,
       max_processors=1024, channel=DistributionChannel.DIRECT,
       size_class=SizeClass.ROOM,
       notes="Smart Munitions upgrade target."),
    _m(vendor="IBM", model="SP2 (16)", country="USA", year=1994.3,
       architecture=Architecture.MPP, n_processors=16,
       element=find_micro("POWER2-66").element,
       entry_price_usd=750_000, units_installed=600, max_processors=512,
       channel=DistributionChannel.MIXED, size_class=SizeClass.RACK, approx=True,
       notes="Straddles dedicated-cluster and MPP classes (note 51)."),
    _m(vendor="IBM", model="SP2 (128)", country="USA", year=1994.3,
       architecture=Architecture.MPP, n_processors=128,
       element=find_micro("POWER2-66").element,
       entry_price_usd=5_000_000, units_installed=40, max_processors=512,
       channel=DistributionChannel.MIXED, size_class=SizeClass.ROOM, approx=True),
    _m(vendor="Convex", model="Exemplar SPP1000 (16)", country="USA", year=1994.3,
       architecture=Architecture.MPP, n_processors=16,
       element=find_micro("PA-7100-99").element,
       entry_price_usd=500_000, units_installed=100, max_processors=128,
       channel=DistributionChannel.DIRECT, size_class=SizeClass.RACK, approx=True,
       notes="Hierarchical shared-memory hypernodes in a distributed fabric."),
    _m(vendor="Mercury", model="RACE array", country="USA", year=1995.0,
       architecture=Architecture.MPP, n_processors=64, element=None,
       quoted_ctp_mtops=7_400.0, entry_price_usd=400_000, units_installed=200,
       channel=DistributionChannel.MIXED, size_class=SizeClass.RACK, approx=True,
       notes="Minimally sufficient deployed SIRST processor (~7,400 Mtops)."),
    # ------------------------- SMP servers (the frontier) -----------------
    _m(vendor="Sun", model="SPARCcenter 2000 (20)", country="USA", year=1992.9,
       architecture=Architecture.SMP, n_processors=20,
       element=find_micro("SuperSPARC-40").element,
       entry_price_usd=150_000, max_price_usd=1_000_000, units_installed=2_000,
       max_processors=20, channel=DistributionChannel.THIRD_PARTY,
       size_class=SizeClass.RACK, field_upgradable=True, approx=True),
    _m(vendor="SGI", model="Challenge XL (36)", country="USA", year=1993.2,
       architecture=Architecture.SMP, n_processors=36,
       element=find_micro("R4400-150").element,
       entry_price_usd=100_000, max_price_usd=1_000_000, units_installed=4_000,
       max_processors=36, channel=DistributionChannel.THIRD_PARTY,
       size_class=SizeClass.RACK, field_upgradable=True, approx=True,
       notes='"Several thousands of chassis" upgradable in the field (Ch. 3).'),
    _m(vendor="Cray", model="CS6400 (64)", country="USA", year=1993.8,
       architecture=Architecture.SMP, n_processors=64,
       element=find_micro("SuperSPARC-60").element,
       entry_price_usd=300_000, max_price_usd=2_000_000, units_installed=250,
       max_processors=64, channel=DistributionChannel.THIRD_PARTY,
       size_class=SizeClass.RACK, field_upgradable=True, approx=True,
       notes="Sold through the Sun-compatible reseller channel; "
             "hot-insertable processor boards - upgrades without a reboot."),
    _m(vendor="SGI", model="PowerChallenge (4)", country="USA", year=1994.5,
       architecture=Architecture.SMP, n_processors=4,
       element=find_micro("R8000-75").element, quoted_ctp_mtops=1_153.0,
       entry_price_usd=128_000, max_price_usd=1_200_000, units_installed=3_000,
       max_processors=18, channel=DistributionChannel.THIRD_PARTY,
       size_class=SizeClass.DESKSIDE, field_upgradable=True,
       notes="Store-separation simulation machine; note 47's price band."),
    _m(vendor="SGI", model="PowerOnyx (8)", country="USA", year=1994.5,
       architecture=Architecture.SMP, n_processors=8,
       element=find_micro("R8000-75").element, quoted_ctp_mtops=2_124.0,
       entry_price_usd=250_000, max_price_usd=1_200_000, units_installed=800,
       max_processors=18, channel=DistributionChannel.THIRD_PARTY,
       size_class=SizeClass.RACK, field_upgradable=True),
    _m(vendor="SGI", model="PowerChallenge XL (18)", country="USA", year=1994.5,
       architecture=Architecture.SMP, n_processors=18,
       element=find_micro("R8000-75").element,
       entry_price_usd=128_000, max_price_usd=1_200_000, units_installed=1_200,
       max_processors=18, channel=DistributionChannel.THIRD_PARTY,
       size_class=SizeClass.RACK, field_upgradable=True, approx=True,
       notes="Maximum configuration of note 47's $1.2M system."),
    _m(vendor="HP", model="T-500 (12)", country="USA", year=1995.0,
       architecture=Architecture.SMP, n_processors=12,
       element=find_micro("PA-7100-99").element,
       entry_price_usd=200_000, max_price_usd=1_500_000, units_installed=1_000,
       max_processors=12, channel=DistributionChannel.THIRD_PARTY,
       size_class=SizeClass.RACK, field_upgradable=True, approx=True),
    _m(vendor="DEC", model="AlphaServer 8400 (12)", country="USA", year=1995.4,
       architecture=Architecture.SMP, n_processors=12,
       element=find_micro("Alpha 21164-300").element,
       entry_price_usd=250_000, max_price_usd=2_000_000, units_installed=1_500,
       max_processors=12, channel=DistributionChannel.THIRD_PARTY,
       size_class=SizeClass.RACK, field_upgradable=True, approx=True,
       notes="Sold entirely through VARs/OEMs/integrators (Ch. 3)."),
    _m(vendor="Sun", model="Ultra Enterprise 6000 (30)", country="USA", year=1996.3,
       architecture=Architecture.SMP, n_processors=30,
       element=find_micro("UltraSPARC-167").element,
       entry_price_usd=300_000, max_price_usd=2_500_000, units_installed=2_000,
       max_processors=30, channel=DistributionChannel.THIRD_PARTY,
       size_class=SizeClass.RACK, field_upgradable=True, approx=True),
    _m(vendor="DEC", model="AlphaServer 8400 5/440 (12)", country="USA", year=1996.9,
       architecture=Architecture.SMP, n_processors=12,
       element=find_micro("Alpha 21164-300").element.scaled_clock(440.0),
       entry_price_usd=300_000, max_price_usd=2_500_000, units_installed=1_200,
       max_processors=12, channel=DistributionChannel.THIRD_PARTY,
       size_class=SizeClass.RACK, field_upgradable=True, approx=True),
    _m(vendor="Sun", model="Enterprise 10000 (64)", country="USA", year=1997.5,
       architecture=Architecture.SMP, n_processors=64,
       element=find_micro("UltraSPARC-167").element.scaled_clock(250.0),
       entry_price_usd=800_000, max_price_usd=5_000_000, units_installed=800,
       max_processors=64, channel=DistributionChannel.THIRD_PARTY,
       size_class=SizeClass.RACK, field_upgradable=True, approx=True,
       notes="End-of-decade SMP; carries the frontier past 16,000 Mtops."),
    # ------------------------- workstations -------------------------------
    _m(vendor="Sun", model="SPARCstation 4/300", country="USA", year=1989.3,
       architecture=Architecture.UNIPROCESSOR,
       element=ComputingElement("CY7C601", 25.0, 32.0, 0.25, 1.0, True),
       quoted_ctp_mtops=20.8, entry_price_usd=15_000, units_installed=100_000,
       channel=DistributionChannel.THIRD_PARTY, size_class=SizeClass.DESKTOP,
       notes="Desert Shield communications-architecture workstation."),
    _m(vendor="Sun", model="SPARCstation 10", country="USA", year=1992.4,
       architecture=Architecture.SMP, n_processors=1,
       element=find_micro("SuperSPARC-40").element, quoted_ctp_mtops=53.3,
       entry_price_usd=20_000, units_installed=300_000, max_processors=4,
       channel=DistributionChannel.THIRD_PARTY, size_class=SizeClass.DESKTOP,
       field_upgradable=True,
       notes="June 1992: multiprocessing reaches the volume workstation."),
    _m(vendor="DEC", model="3000/500", country="USA", year=1992.9,
       architecture=Architecture.UNIPROCESSOR,
       element=find_micro("Alpha 21064-150").element,
       entry_price_usd=35_000, units_installed=50_000, approx=True,
       channel=DistributionChannel.THIRD_PARTY, size_class=SizeClass.DESKTOP),
    _m(vendor="SGI", model="Onyx workstation (2)", country="USA", year=1993.5,
       architecture=Architecture.SMP, n_processors=2,
       element=find_micro("R4400-150").element, quoted_ctp_mtops=300.0,
       entry_price_usd=40_000, units_installed=20_000, max_processors=4,
       channel=DistributionChannel.THIRD_PARTY, size_class=SizeClass.DESKSIDE,
       field_upgradable=True, notes="ALERT theater missile-warning workstation."),
    _m(vendor="SGI", model="Onyx server (12)", country="USA", year=1993.5,
       architecture=Architecture.SMP, n_processors=12,
       element=find_micro("R4400-150").element, quoted_ctp_mtops=1_700.0,
       entry_price_usd=150_000, units_installed=3_000, max_processors=24,
       channel=DistributionChannel.THIRD_PARTY, size_class=SizeClass.RACK,
       field_upgradable=True, approx=True,
       notes="ALERT central processing suite server."),
    # -------------------- commercial-market MPP players -------------------
    _m(vendor="nCUBE", model="nCUBE 2 (1024)", country="USA", year=1990.0,
       architecture=Architecture.MPP, n_processors=1024,
       element=ComputingElement("nCUBE2", 20.0, 64.0, 0.35, 0.5, True),
       entry_price_usd=1_500_000, units_installed=150, max_processors=8192,
       channel=DistributionChannel.DIRECT, size_class=SizeClass.ROOM,
       approx=True,
       notes="Commercial MPP player of Chapter 3's market discussion."),
    _m(vendor="Unisys", model="OPUS (32)", country="USA", year=1995.3,
       architecture=Architecture.MPP, n_processors=32,
       element=find_micro("Pentium-133").element,
       entry_price_usd=800_000, units_installed=50, max_processors=64,
       channel=DistributionChannel.MIXED, size_class=SizeClass.RACK,
       approx=True,
       notes="Pentium nodes with an interconnect licensed from Intel SSD "
             "(Ch. 3).  Data-mining market."),
    _m(vendor="AT&T GIS", model="3600 (64)", country="USA", year=1993.5,
       architecture=Architecture.MPP, n_processors=64,
       element=ComputingElement("486DX2-66c", 66.0, 32.0, 0.33, 1.0, False),
       entry_price_usd=1_000_000, units_installed=300, max_processors=512,
       channel=DistributionChannel.MIXED, size_class=SizeClass.ROOM,
       approx=True,
       notes="Teradata-lineage commercial decision-support MPP."),
    _m(vendor="Tandem", model="Himalaya K10000 (16)", country="USA",
       year=1994.0, architecture=Architecture.MPP, n_processors=16,
       element=ComputingElement("MIPS R4400-100", 100.0, 64.0, 1.0, 1.0,
                                False),
       entry_price_usd=900_000, units_installed=400, max_processors=112,
       channel=DistributionChannel.MIXED, size_class=SizeClass.RACK,
       approx=True,
       notes="Fault-tolerant OLTP: the mainframe-replacement wave."),
    # ------------------------- mid-range vector ---------------------------
    _m(vendor="Convex", model="C3880", country="USA", year=1991.9,
       architecture=Architecture.VECTOR, n_processors=8,
       element=_vector_cpu("C38 CPU", 60.0, 2.0, 1.0),
       entry_price_usd=1_800_000, units_installed=200, approx=True,
       channel=DistributionChannel.DIRECT, size_class=SizeClass.ROOM,
       notes="Mid-range 'Crayette'; vendor-direct like its big siblings."),
    # ------------------------- workstations (more) ------------------------
    _m(vendor="IBM", model="RS/6000-590", country="USA", year=1994.3,
       architecture=Architecture.UNIPROCESSOR,
       element=find_micro("POWER2-66").element,
       entry_price_usd=60_000, units_installed=30_000, approx=True,
       channel=DistributionChannel.THIRD_PARTY, size_class=SizeClass.DESKSIDE,
       notes="The SP2 node sold as a desk-side workstation."),
    _m(vendor="HP", model="9000/735", country="USA", year=1992.9,
       architecture=Architecture.UNIPROCESSOR,
       element=find_micro("PA-7100-99").element,
       entry_price_usd=40_000, units_installed=60_000, approx=True,
       channel=DistributionChannel.THIRD_PARTY, size_class=SizeClass.DESKTOP),
    # ------------------------- Japanese vector line -----------------------
    _m(vendor="NEC", model="SX-3/44", country="Japan", year=1990.5,
       architecture=Architecture.VECTOR, n_processors=4, element=None,
       quoted_ctp_mtops=22_000.0, quoted_peak_mflops=22_000.0,
       entry_price_usd=25_000_000, units_installed=15, approx=True,
       channel=DistributionChannel.DIRECT, size_class=SizeClass.ROOM,
       notes="The bilateral Supercomputer Control Regime's other supplier."),
    _m(vendor="Fujitsu", model="VPP500 (80)", country="Japan", year=1993.3,
       architecture=Architecture.MPP, n_processors=80, element=_VPP500_PE,
       entry_price_usd=30_000_000, units_installed=20, max_processors=222,
       channel=DistributionChannel.DIRECT, size_class=SizeClass.ROOM, approx=True),
    _m(vendor="Hitachi", model="S-3800/480", country="Japan", year=1993.9,
       architecture=Architecture.VECTOR, n_processors=4, element=None,
       quoted_ctp_mtops=28_000.0, entry_price_usd=30_000_000, units_installed=10,
       approx=True, channel=DistributionChannel.DIRECT, size_class=SizeClass.ROOM),
)


_BY_KEY = {m.key: m for m in COMMERCIAL_SYSTEMS}
assert len(_BY_KEY) == len(COMMERCIAL_SYSTEMS), "duplicate machine keys"


def _normalize_key(key: str) -> str:
    """Case-fold and collapse surrounding/internal whitespace, so
    ``"  cray   c916 "`` resolves to the ``"Cray C916"`` catalog entry."""
    return " ".join(str(key).split()).casefold()


_BY_NORMALIZED_KEY = {_normalize_key(m.key): m for m in COMMERCIAL_SYSTEMS}
assert len(_BY_NORMALIZED_KEY) == len(COMMERCIAL_SYSTEMS), \
    "machine keys collide after normalization"


def find_machine(key: str) -> MachineSpec:
    """Look up a commercial system by ``"vendor model"`` key.

    The lookup is forgiving about case and whitespace.  A miss raises
    :class:`CatalogLookupError` naming the closest catalog keys.
    """
    counter_inc("catalog.lookups")
    machine = _BY_NORMALIZED_KEY.get(_normalize_key(key))
    if machine is not None:
        return machine
    counter_inc("catalog.lookup_misses")
    closest = difflib.get_close_matches(
        _normalize_key(key), list(_BY_NORMALIZED_KEY), n=3, cutoff=0.3
    )
    suggestions = [_BY_NORMALIZED_KEY[c].key for c in closest]
    hint = f"; closest: {', '.join(suggestions)}" if suggestions else ""
    raise CatalogLookupError(
        f"unknown machine {key!r}{hint}",
        context={"got": key, "closest": suggestions,
                 "catalog_size": len(_BY_KEY)},
    )


# Precomputed year-sorted index.  The catalog is immutable between mutation
# events (repro.catalog.events), so the sort, the year array, and the
# running maximum of ratings are computed once per epoch; every query below
# is a bisect against these arrays instead of a fresh scan/sort of the
# catalog.  Events splice these structures in place of rebuilding them —
# see append_machine_entry / amend_machine_entry at the bottom of this
# module.
_SORTED_BY_YEAR: tuple[MachineSpec, ...] = tuple(
    sorted(COMMERCIAL_SYSTEMS, key=lambda m: (m.year, m.key))
)
_SORTED_YEARS: np.ndarray = np.array([m.year for m in _SORTED_BY_YEAR])
_RUNNING_MAX_MTOPS: np.ndarray = np.maximum.accumulate(
    np.array([m.ctp_mtops for m in _SORTED_BY_YEAR])
)
_SORTED_YEARS.setflags(write=False)
_RUNNING_MAX_MTOPS.setflags(write=False)

#: The import-time catalog, kept for ``restore_baseline_catalog``.
_BASELINE_SYSTEMS: tuple[MachineSpec, ...] = COMMERCIAL_SYSTEMS


def commercial_by_year(through: float | None = None) -> list[MachineSpec]:
    """Catalog sorted by introduction year, optionally truncated."""
    if through is None:
        return list(_SORTED_BY_YEAR)
    cut = int(np.searchsorted(_SORTED_YEARS, through, side="right"))
    return list(_SORTED_BY_YEAR[:cut])


@lru_cache(maxsize=None)
def _by_architecture(arch: Architecture) -> tuple[MachineSpec, ...]:
    return tuple(m for m in _SORTED_BY_YEAR if m.architecture is arch)


def commercial_by_architecture(arch: Architecture) -> list[MachineSpec]:
    """Catalog entries of one architecture class, by year."""
    return list(_by_architecture(arch))


@lru_cache(maxsize=None)
def max_config_mtops(machine: MachineSpec) -> float:
    """Memoized CTP of a machine family's maximum configuration.

    The frontier, the SMP trend, and the sensitivity analyses all rate
    machines at the ceiling a field upgrader can reach; computing that
    rating walks the CTP pipeline, so it is cached per (hashable, frozen)
    spec here rather than recomputed on every query.
    """
    return machine.max_configuration().ctp_mtops


def max_available_mtops(year: float) -> float:
    """Performance of the most powerful system commercially available at
    ``year`` — line D of Figure 3 ("the theoretical maximum of the
    threshold is the performance of the most powerful systems available").
    """
    counter_inc("catalog.bisect_lookups")
    idx = int(np.searchsorted(_SORTED_YEARS, year, side="right")) - 1
    if idx < 0:
        raise ThresholdInfeasibleError(
            f"no commercial systems introduced by {year}",
            context={"got": year,
                     "valid": f">= {float(_SORTED_YEARS[0])}"},
        )
    return float(_RUNNING_MAX_MTOPS[idx])


def max_available_mtops_series(
    years: "np.ndarray | list[float]",
) -> np.ndarray:
    """Line D evaluated over a whole year grid in one pass.

    Array-in/array-out companion of :func:`max_available_mtops`; grid
    points before the first cataloged system get 0.0 rather than raising,
    so callers can scan arbitrary grids without pre-clipping.
    """
    grid = np.asarray(years, dtype=float)
    counter_inc("catalog.bisect_lookups")
    counter_inc("catalog.bisect_grid_points", grid.size)
    idx = np.searchsorted(_SORTED_YEARS, grid, side="right") - 1
    out = np.zeros(grid.shape)
    mask = idx >= 0
    out[mask] = _RUNNING_MAX_MTOPS[idx[mask]]
    return out


def catalog_index_info() -> dict[str, int]:
    """Introspection for :func:`repro.obs.metrics_snapshot`: size of the
    precomputed year/running-max bisect index."""
    from repro.obs.trace import counters

    stats = counters()
    return {
        "systems": len(COMMERCIAL_SYSTEMS),
        "year_index_size": int(_SORTED_YEARS.size),
        "lookups": int(stats.get("catalog.lookups", 0)),
        "lookup_misses": int(stats.get("catalog.lookup_misses", 0)),
        "bisect_lookups": int(stats.get("catalog.bisect_lookups", 0)),
        "bisect_grid_points": int(stats.get("catalog.bisect_grid_points", 0)),
    }


# --------------------------------------------------------------------------
# Event-sourced mutation support (repro.catalog.events).
#
# These helpers patch the module's catalog state — the systems tuple, the
# key lookup dicts, and the year-sorted bisect index — without a full
# rebuild.  They only touch *this* module: epoch bumps, invalidation of
# downstream caches, and patching of the columns/frontier stores are
# orchestrated by repro.catalog.events under its write guard.  Splices are
# bit-identical to the import-time construction because a running maximum
# is a sequential fold: the suffix from the touched position can be
# recomputed by seeding np.maximum.accumulate with the unchanged prefix.
# --------------------------------------------------------------------------


def _rebind_catalog_exports() -> None:
    """Refresh ``COMMERCIAL_SYSTEMS`` re-exports on packages that bound the
    tuple at import time (``repro`` and ``repro.machines``)."""
    import sys

    for name in ("repro", "repro.machines"):
        module = sys.modules.get(name)
        if module is not None and hasattr(module, "COMMERCIAL_SYSTEMS"):
            module.COMMERCIAL_SYSTEMS = COMMERCIAL_SYSTEMS


def _install_sorted_index(
    sorted_by_year: tuple[MachineSpec, ...],
    sorted_years: np.ndarray,
    running_max: np.ndarray,
) -> None:
    global _SORTED_BY_YEAR, _SORTED_YEARS, _RUNNING_MAX_MTOPS
    sorted_years = np.ascontiguousarray(sorted_years)
    running_max = np.ascontiguousarray(running_max)
    sorted_years.setflags(write=False)
    running_max.setflags(write=False)
    _SORTED_BY_YEAR = sorted_by_year
    _SORTED_YEARS = sorted_years
    _RUNNING_MAX_MTOPS = running_max
    _by_architecture.cache_clear()


def _sorted_insert_position(machine: MachineSpec) -> int:
    """Insertion index that keeps ``_SORTED_BY_YEAR`` sorted by
    ``(year, key)`` — exactly the import-time sort key."""
    import bisect

    keys = [(m.year, m.key) for m in _SORTED_BY_YEAR]
    return bisect.bisect_left(keys, (machine.year, machine.key))


def append_machine_entry(machine: MachineSpec) -> int:
    """Splice a new machine into the catalog; returns its catalog row.

    The new entry lands at the end of ``COMMERCIAL_SYSTEMS`` (catalog row
    order is append-only, which is what lets the columns store patch one
    row) and at its ``(year, key)`` position in the bisect index, where
    the running maximum is extended with ``max(prefix_max, rating)`` —
    no re-accumulation of the unchanged prefix, and the suffix only needs
    an elementwise maximum against the inserted value.
    """
    global COMMERCIAL_SYSTEMS, _BY_KEY, _BY_NORMALIZED_KEY
    from repro.obs.errors import ValidationError

    if machine.key in _BY_KEY:
        raise ValidationError(
            f"machine {machine.key!r} already in catalog; use amend_machine",
            context={"got": machine.key, "valid": "a key not in the catalog"},
        )
    normalized = _normalize_key(machine.key)
    if normalized in _BY_NORMALIZED_KEY:
        raise ValidationError(
            f"machine key {machine.key!r} collides with "
            f"{_BY_NORMALIZED_KEY[normalized].key!r} after normalization",
            context={"got": machine.key,
                     "valid": "a key distinct after case/whitespace folding"},
        )

    pos = _sorted_insert_position(machine)
    rating = machine.ctp_mtops
    prev_max = float(_RUNNING_MAX_MTOPS[pos - 1]) if pos else -np.inf
    inserted_max = max(prev_max, rating)
    new_running = np.concatenate([
        _RUNNING_MAX_MTOPS[:pos],
        [inserted_max],
        np.maximum(_RUNNING_MAX_MTOPS[pos:], inserted_max),
    ])
    new_years = np.concatenate([
        _SORTED_YEARS[:pos], [machine.year], _SORTED_YEARS[pos:],
    ])
    new_sorted = _SORTED_BY_YEAR[:pos] + (machine,) + _SORTED_BY_YEAR[pos:]

    row = len(COMMERCIAL_SYSTEMS)
    COMMERCIAL_SYSTEMS = COMMERCIAL_SYSTEMS + (machine,)
    _BY_KEY = {**_BY_KEY, machine.key: machine}
    _BY_NORMALIZED_KEY = {**_BY_NORMALIZED_KEY, normalized: machine}
    _install_sorted_index(new_sorted, new_years, new_running)
    _rebind_catalog_exports()
    counter_inc("catalog.appends")
    return row


def amend_machine_entry(key: str, machine: MachineSpec) -> int:
    """Replace the catalog entry at ``key`` with ``machine`` in place;
    returns the (unchanged) catalog row.

    The replacement keeps the row position in ``COMMERCIAL_SYSTEMS`` so
    columns stores can overwrite exactly one row.  The bisect index is
    re-spliced (the amended year/key may move the entry) and the running
    maximum re-accumulated from the earliest touched position, seeded by
    the unchanged prefix — identical bits to a full rebuild.
    """
    global COMMERCIAL_SYSTEMS, _BY_KEY, _BY_NORMALIZED_KEY
    from repro.obs.errors import ValidationError

    old = find_machine(key)
    row = COMMERCIAL_SYSTEMS.index(old)
    normalized = _normalize_key(machine.key)
    other = _BY_NORMALIZED_KEY.get(normalized)
    if other is not None and other is not old:
        raise ValidationError(
            f"amended key {machine.key!r} collides with {other.key!r}",
            context={"got": machine.key,
                     "valid": "the amended key or an unused one"},
        )

    old_pos = _SORTED_BY_YEAR.index(old)
    without = _SORTED_BY_YEAR[:old_pos] + _SORTED_BY_YEAR[old_pos + 1:]
    import bisect

    keys = [(m.year, m.key) for m in without]
    new_pos = bisect.bisect_left(keys, (machine.year, machine.key))
    new_sorted = without[:new_pos] + (machine,) + without[new_pos:]
    start = min(old_pos, new_pos)
    tail = np.array([m.ctp_mtops for m in new_sorted[start:]])
    if start:
        seeded = np.concatenate([[_RUNNING_MAX_MTOPS[start - 1]], tail])
        tail_running = np.maximum.accumulate(seeded)[1:]
    else:
        tail_running = np.maximum.accumulate(tail)
    new_running = np.concatenate([_RUNNING_MAX_MTOPS[:start], tail_running])
    new_years = np.array([m.year for m in new_sorted])

    systems = list(COMMERCIAL_SYSTEMS)
    systems[row] = machine
    COMMERCIAL_SYSTEMS = tuple(systems)
    by_key = dict(_BY_KEY)
    del by_key[old.key]
    by_key[machine.key] = machine
    _BY_KEY = by_key
    by_norm = dict(_BY_NORMALIZED_KEY)
    del by_norm[_normalize_key(old.key)]
    by_norm[normalized] = machine
    _BY_NORMALIZED_KEY = by_norm
    _install_sorted_index(new_sorted, new_years, new_running)
    _rebind_catalog_exports()
    counter_inc("catalog.amends")
    return row


def restore_baseline_catalog() -> None:
    """Rebuild every catalog structure from the import-time machine set
    (used by ``repro.catalog.events.reset_catalog``)."""
    global COMMERCIAL_SYSTEMS, _BY_KEY, _BY_NORMALIZED_KEY

    COMMERCIAL_SYSTEMS = _BASELINE_SYSTEMS
    _BY_KEY = {m.key: m for m in COMMERCIAL_SYSTEMS}
    _BY_NORMALIZED_KEY = {_normalize_key(m.key): m for m in COMMERCIAL_SYSTEMS}
    new_sorted = tuple(sorted(COMMERCIAL_SYSTEMS, key=lambda m: (m.year, m.key)))
    _install_sorted_index(
        new_sorted,
        np.array([m.year for m in new_sorted]),
        np.maximum.accumulate(np.array([m.ctp_mtops for m in new_sorted])),
    )
    _rebind_catalog_exports()


def _register_catalog_hooks() -> None:
    from repro.catalog.registry import register_invalidation_hook

    register_invalidation_hook(
        "machines.catalog.architecture_index",
        lambda epoch: _by_architecture.cache_clear(),
    )
    register_invalidation_hook(
        "machines.catalog.max_config_mtops",
        lambda epoch: max_config_mtops.cache_clear(),
    )


_register_catalog_hooks()
