"""Runnable computational kernels behind the workload models.

The simulator's workloads (:mod:`repro.simulate.workloads`) describe jobs
abstractly — total operations, steps, halo patterns.  This package provides
small, *actually runnable* numpy kernels for the three workload families
the paper's cluster analysis leans on, so those abstractions are grounded
in executable code rather than assumption:

* :mod:`~repro.kernels.shallow_water` — the fine-grained PDE family
  ("explicit finite-difference ... for modeling shallow water" — the
  workload Mattson found non-competitive on clusters), with exact mass
  conservation as the correctness invariant and measurable halo traffic;
* :mod:`~repro.kernels.raytrace` — the embarrassingly parallel family
  (per-row independence is a *tested* property, not an assumption);
* :mod:`~repro.kernels.solvers` — the "very important, common, and hard to
  parallelize" sparse linear-algebra family (Jacobi and conjugate
  gradients on the 2-D Poisson operator);
* :mod:`~repro.kernels.fft` — a from-scratch radix-2 FFT for the signal-
  and image-processing family, whose transpose step is the all-to-all
  pattern;
* :mod:`~repro.kernels.calibrate` — a measurement harness that times the
  kernels and derives their computation/communication granularity, the
  quantity the paper's Table 5 argument turns on.
"""

from repro.kernels.shallow_water import (
    ShallowWaterState,
    initial_gaussian,
    step,
    run,
    total_mass,
    total_energy,
    halo_bytes_per_step,
    flops_per_step,
)
from repro.kernels.raytrace import (
    Sphere,
    demo_scene,
    render,
    render_rows,
)
from repro.kernels.fft import (
    fft_rows,
    fft2d,
    ifft2d,
    fft2d_flops,
    alltoall_bytes_per_process,
)
from repro.kernels.solvers import (
    poisson_matrix,
    jacobi_poisson,
    conjugate_gradient,
)
from repro.kernels.calibrate import (
    KernelCalibration,
    calibrate_kernels,
)

__all__ = [
    "ShallowWaterState",
    "initial_gaussian",
    "step",
    "run",
    "total_mass",
    "total_energy",
    "halo_bytes_per_step",
    "flops_per_step",
    "Sphere",
    "demo_scene",
    "render",
    "render_rows",
    "fft_rows",
    "fft2d",
    "ifft2d",
    "fft2d_flops",
    "alltoall_bytes_per_process",
    "poisson_matrix",
    "jacobi_poisson",
    "conjugate_gradient",
    "KernelCalibration",
    "calibrate_kernels",
]
