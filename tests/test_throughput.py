"""Tests for the job-mix throughput model (note 52 economics)."""

import pytest

from repro.simulate.architectures import cluster_machine, vector_machine
from repro.simulate.throughput import (
    JobMix,
    cost_per_job_rate,
    throughput,
)

_MIX = JobMix(name="overnight CFD cases", job_mops=1.0e6, job_memory_mb=64.0)


class TestThroughput:
    def test_cluster_throughput_scales_with_nodes(self):
        small = throughput(_MIX, cluster_machine(8))
        large = throughput(_MIX, cluster_machine(32))
        assert large.jobs_per_day == pytest.approx(4 * small.jobs_per_day)

    def test_granularity_irrelevant_for_throughput(self):
        """Independent jobs suffer no interconnect penalty: an Ethernet
        farm delivers the same throughput as the same nodes on ATM."""
        from repro.simulate.interconnect import ATM_155, ETHERNET_10

        lan = throughput(_MIX, cluster_machine(16, network=ETHERNET_10))
        atm = throughput(
            _MIX,
            cluster_machine(16, network=ATM_155, dedicated=False),
        )
        assert lan.jobs_per_day == pytest.approx(atm.jobs_per_day)

    def test_memory_gates_cluster(self):
        fat_job = JobMix("big memory", job_mops=1e6, job_memory_mb=512.0)
        result = throughput(fat_job, cluster_machine(16, node_memory_mb=128.0))
        assert not result.runnable
        assert result.jobs_per_day == 0.0
        assert "cannot hold" in result.reason

    def test_shared_pool_holds_fat_jobs(self):
        fat_job = JobMix("big memory", job_mops=1e6, job_memory_mb=512.0)
        result = throughput(fat_job, vector_machine(16))
        assert result.runnable

    def test_shared_memory_slots_limit(self):
        # A shared machine can only co-run as many jobs as the pool holds.
        huge = JobMix("huge", job_mops=1e6,
                      job_memory_mb=vector_machine(16).total_memory_mb / 2)
        result = throughput(huge, vector_machine(16))
        assert result.runnable
        # Two memory slots despite sixteen processors.
        single_rate = 86_400.0 / (huge.job_mops
                                  / vector_machine(16).node_mops_per_s)
        assert result.jobs_per_day == pytest.approx(2 * single_rate)

    def test_runnable_reason_none(self):
        assert throughput(_MIX, cluster_machine(4)).reason is None


class TestEconomics:
    def test_cluster_cheaper_per_throughput(self):
        """Note 52: workstation farms became the cheap Mflops for
        high-volume environments.  A $500K 16-node farm beats a $30M
        vector machine on dollars per job/day."""
        farm = throughput(_MIX, cluster_machine(16))
        cray = throughput(_MIX, vector_machine(16))
        farm_cost = cost_per_job_rate(farm, 500_000.0)
        cray_cost = cost_per_job_rate(cray, 30_000_000.0)
        assert farm_cost < cray_cost

    def test_cray_faster_absolute(self):
        # The vector machine still posts more jobs/day at equal slot
        # count — it loses on economics, not capability.
        farm = throughput(_MIX, cluster_machine(16))
        cray = throughput(_MIX, vector_machine(16))
        assert cray.jobs_per_day > farm.jobs_per_day

    def test_unrunnable_mix_infinite_cost(self):
        fat = JobMix("fat", job_mops=1e6, job_memory_mb=1e6)
        result = throughput(fat, cluster_machine(4))
        assert cost_per_job_rate(result, 100_000.0) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            JobMix("bad", job_mops=0.0, job_memory_mb=1.0)
        result = throughput(_MIX, cluster_machine(4))
        with pytest.raises(ValueError):
            cost_per_job_rate(result, 0.0)
